"""Tests for the lazy retrieval layer: open_field, SegmentCache, service.

Covers the PR acceptance criteria: a progressive session over a
DirectoryStore at a loose tolerance fetches strictly fewer bytes than
the eager ``load_field`` path; lazy per-step accounting matches the
store's own read counters exactly; the shared cache evicts under a
tight byte budget without corrupting results; and concurrent sessions
are deterministic with the second-session traffic served from cache.
"""

import json
import threading

import numpy as np
import pytest

from repro.core.reconstruct import Reconstructor
from repro.core.refactor import refactor
from repro.core.service import RetrievalService, SegmentCache
from repro.core.store import (
    DirectoryStore,
    MemoryStore,
    SegmentReader,
    ShardedDirectoryStore,
    load_field,
    open_field,
    store_field,
)
from repro.core.stream import LazyRefactoredField
from repro.data import generators as gen
from repro.qoi import v_total


@pytest.fixture(scope="module")
def field_and_data():
    data = gen.gaussian_random_field((16, 16, 16), -2.0, seed=9,
                                     dtype=np.float64)
    return data, refactor(data, name="vel")


@pytest.fixture()
def dir_store(field_and_data, tmp_path):
    _, f = field_and_data
    store = DirectoryStore(tmp_path / "store")
    store_field(store, f)
    store.reads = store.bytes_read = 0
    return store


class TestSegmentReaderProtocol:
    def test_all_backends_satisfy_protocol(self, tmp_path):
        assert isinstance(MemoryStore(), SegmentReader)
        assert isinstance(DirectoryStore(tmp_path / "a"), SegmentReader)
        assert isinstance(
            ShardedDirectoryStore(tmp_path / "b"), SegmentReader
        )

    def test_cache_fronts_any_reader(self):
        class Flaky:
            """Minimal duck-typed reader: only `get` is exercised."""

            def __init__(self):
                self.calls = 0

            def get(self, key):
                self.calls += 1
                return b"payload-" + key.encode()

        cache = SegmentCache(Flaky(), max_bytes=1 << 20)
        a1, cold1 = cache.resolve("k")
        a2, cold2 = cache.resolve("k")
        assert (cold1, cold2) == (True, False)
        assert a1 == a2 == b"payload-k"
        assert cache._reader.calls == 1


class TestShardedDirectoryStore:
    def test_round_trip_and_spread(self, field_and_data, tmp_path):
        data, f = field_and_data
        store = ShardedDirectoryStore(tmp_path / "sh", num_shards=8)
        store_field(store, f)
        shard_dirs = [
            p for p in (tmp_path / "sh").iterdir()
            if p.is_dir() and p.name.startswith("shard_")
        ]
        assert len(shard_dirs) > 1  # segments actually spread out
        loaded = load_field(store, "vel")
        r = Reconstructor(loaded).reconstruct(tolerance=1e-6)
        assert np.max(np.abs(r.data - data)) <= 1e-6

    def test_manifest_compatible_and_persistent(self, tmp_path):
        root = tmp_path / "sh"
        s1 = ShardedDirectoryStore(root, num_shards=4)
        s1.put("seg", b"data")
        s2 = ShardedDirectoryStore(root, num_shards=4)
        assert s2.keys() == ["seg"]
        assert s2.size_of("seg") == 4
        assert s2.get("seg") == b"data"
        assert "seg" in s2

    def test_stable_hashing(self, tmp_path):
        s = ShardedDirectoryStore(tmp_path / "sh", num_shards=7)
        assert s.shard_of("vel.L0.G0") == s.shard_of("vel.L0.G0")
        assert 0 <= s.shard_of("anything") < 7

    def test_validates_num_shards(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedDirectoryStore(tmp_path / "sh", num_shards=0)

    def test_reopen_with_different_shard_count_raises(self, tmp_path):
        root = tmp_path / "sh"
        s = ShardedDirectoryStore(root, num_shards=8)
        s.put("seg", b"data")
        with pytest.raises(ValueError, match="num_shards"):
            ShardedDirectoryStore(root, num_shards=16)
        # same count reopens fine
        s2 = ShardedDirectoryStore(root, num_shards=8)
        assert s2.get("seg") == b"data"

    def test_lazy_open_over_sharded(self, field_and_data, tmp_path):
        data, f = field_and_data
        store = ShardedDirectoryStore(tmp_path / "sh", num_shards=8)
        store_field(store, f)
        lazy = open_field(store, "vel")
        r = Reconstructor(lazy).reconstruct(tolerance=1e-4)
        assert np.max(np.abs(r.data - data)) <= 1e-4


class TestManifestBatching:
    def test_put_flushes_immediately_by_default(self, tmp_path):
        s = DirectoryStore(tmp_path / "s")
        s.put("a", b"1")
        s.put("b", b"2")
        assert s.manifest_writes == 2

    def test_batch_flushes_once(self, tmp_path):
        s = DirectoryStore(tmp_path / "s")
        with s.batch():
            for i in range(10):
                s.put(f"seg{i}", b"x" * i)
        assert s.manifest_writes == 1
        # and the single flush persisted everything
        s2 = DirectoryStore(tmp_path / "s")
        assert len(s2.keys()) == 10

    def test_nested_batch_outermost_flushes(self, tmp_path):
        s = DirectoryStore(tmp_path / "s")
        with s.batch():
            s.put("a", b"1")
            with s.batch():
                s.put("b", b"2")
            assert s.manifest_writes == 0  # inner exit does not flush
        assert s.manifest_writes == 1

    def test_empty_batch_does_not_flush(self, tmp_path):
        s = DirectoryStore(tmp_path / "s")
        with s.batch():
            pass
        assert s.manifest_writes == 0

    def test_store_field_uses_batching(self, field_and_data, tmp_path):
        _, f = field_and_data
        s = DirectoryStore(tmp_path / "s")
        store_field(s, f)
        assert s.manifest_writes == 1
        assert len(s.keys()) == sum(lv.num_groups for lv in f.levels) + 1


class TestLazyField:
    def test_open_reads_no_segments(self, dir_store):
        lazy = open_field(dir_store, "vel")
        assert isinstance(lazy, LazyRefactoredField)
        # only the index blob was read; planning metadata is complete
        assert lazy.io_counters.segment_reads == 0
        assert lazy.total_bytes() > 0
        assert lazy.max_groups() == [lv.num_groups for lv in lazy.levels]
        assert lazy.io_counters.segment_reads == 0  # still nothing fetched

    def test_loose_session_fetches_strictly_fewer_bytes_than_load_field(
        self, field_and_data, dir_store
    ):
        """The PR acceptance criterion."""
        data, _ = field_and_data
        full = load_field(dir_store, "vel")
        eager_bytes = dir_store.bytes_read
        dir_store.reads = dir_store.bytes_read = 0

        lazy = open_field(dir_store, "vel")
        dir_store.reads = dir_store.bytes_read = 0
        r = Reconstructor(lazy).reconstruct(tolerance=1e-2)
        assert dir_store.bytes_read < eager_bytes  # strictly fewer
        assert np.max(np.abs(r.data - data)) <= 1e-2
        # and identical output to the eager path
        r_eager = Reconstructor(full).reconstruct(tolerance=1e-2)
        np.testing.assert_array_equal(r.data, r_eager.data)

    def test_incremental_bytes_matches_store_reads(self, dir_store):
        lazy = open_field(dir_store, "vel")
        recon = Reconstructor(lazy)
        dir_store.reads = dir_store.bytes_read = 0
        r1 = recon.reconstruct(tolerance=1e-1)
        assert dir_store.bytes_read == r1.incremental_bytes == r1.cold_bytes
        read_after_first = dir_store.bytes_read
        r2 = recon.reconstruct(tolerance=1e-5)
        # the tighter step reads exactly its increment — nothing refetched
        assert (
            dir_store.bytes_read - read_after_first
            == r2.incremental_bytes
            == r2.cold_bytes
        )
        assert lazy.io_counters.cold_bytes == dir_store.bytes_read

    def test_same_tolerance_refetches_nothing(self, dir_store):
        lazy = open_field(dir_store, "vel")
        recon = Reconstructor(lazy)
        recon.reconstruct(tolerance=1e-3)
        before = dir_store.bytes_read
        r = recon.reconstruct(tolerance=1e-3)
        assert dir_store.bytes_read == before
        assert r.incremental_bytes == 0 and r.cold_bytes == 0

    def test_full_lazy_equals_eager(self, field_and_data, dir_store):
        _, f = field_and_data
        lazy = open_field(dir_store, "vel")
        r_lazy = Reconstructor(lazy).reconstruct()  # near-lossless
        r_eager = Reconstructor(load_field(dir_store, "vel")).reconstruct()
        np.testing.assert_array_equal(r_lazy.data, r_eager.data)

    def test_pre_metadata_index_still_opens(self, field_and_data, tmp_path):
        """Indexes written before the `segments` table stay readable."""
        data, f = field_and_data
        store = DirectoryStore(tmp_path / "old")
        index = store_field(store, f)
        legacy = {"field": index["field"], "groups": index["groups"]}
        store.put("vel.index", json.dumps(legacy).encode())
        lazy = open_field(store, "vel")
        store.reads = store.bytes_read = 0
        r = Reconstructor(lazy).reconstruct(tolerance=1e-3)
        assert np.max(np.abs(r.data - data)) <= 1e-3
        # plane-count discovery fetches during *planning* are still part
        # of the step's cold accounting
        assert r.cold_bytes == store.bytes_read

    def test_eager_results_report_zero_cold_bytes(self, field_and_data):
        _, f = field_and_data
        r = Reconstructor(f).reconstruct(tolerance=1e-3)
        assert r.cold_bytes == 0 and r.cache_hit_bytes == 0


class TestSegmentCache:
    def test_eviction_under_tight_budget(self, field_and_data, dir_store):
        data, f = field_and_data
        sizes = [dir_store.size_of(k) for k in dir_store.keys()
                 if not k.endswith(".index")]
        budget = max(sizes) * 2  # holds ~2 segments at a time
        cache = SegmentCache(dir_store, max_bytes=budget)
        lazy = open_field(dir_store, "vel", cache=cache)
        r = Reconstructor(lazy).reconstruct(tolerance=1e-5)
        assert cache.evictions > 0
        assert cache.current_bytes <= budget
        assert np.max(np.abs(r.data - data)) <= 1e-5  # results unharmed

    def test_lru_order(self):
        store = MemoryStore()
        for key, size in (("a", 4), ("b", 4), ("c", 4)):
            store.put(key, b"x" * size)
        cache = SegmentCache(store, max_bytes=8)
        cache.get("a")
        cache.get("b")
        cache.get("a")  # refresh a; b is now LRU
        cache.get("c")  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_oversize_blob_served_not_cached(self):
        store = MemoryStore()
        store.put("big", b"x" * 100)
        cache = SegmentCache(store, max_bytes=10)
        blob, cold = cache.resolve("big")
        assert cold and blob == b"x" * 100
        assert "big" not in cache and cache.oversize == 1

    def test_stats_and_clear(self):
        store = MemoryStore()
        store.put("k", b"abcd")
        cache = SegmentCache(store, max_bytes=1 << 10)
        cache.get("k")
        cache.get("k")
        s = cache.stats()
        assert s["hits"] == 1 and s["misses"] == 1
        assert s["hit_bytes"] == s["miss_bytes"] == 4
        assert s["hit_rate"] == 0.5
        cache.clear()
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.hits == 1  # counters survive clear

    def test_validates_budget(self):
        with pytest.raises(ValueError):
            SegmentCache(MemoryStore(), max_bytes=0)


class TestRetrievalService:
    def test_second_session_served_from_cache(self, dir_store):
        svc = RetrievalService(dir_store, cache_bytes=64 << 20)
        r1 = svc.session("vel").reconstruct(tolerance=1e-3)
        assert r1.cold_bytes > 0 and r1.cache_hit_bytes == 0
        dir_store.reads = 0
        r2 = svc.session("vel").reconstruct(tolerance=1e-3)
        assert r2.cold_bytes == 0  # fully cache-served
        assert r2.cache_hit_bytes == r1.cold_bytes
        np.testing.assert_array_equal(r1.data, r2.data)
        # even the index blob came from the cache: zero store reads
        assert dir_store.reads == 0

    def test_concurrent_sessions_deterministic(self, field_and_data,
                                               dir_store):
        data, f = field_and_data
        tolerances = [1e-1, 1e-3, 1e-5]
        reference = Reconstructor(f).progressive(tolerances)
        svc = RetrievalService(dir_store, cache_bytes=64 << 20)
        results: dict[int, list] = {}
        errors: list[Exception] = []

        def run(i):
            try:
                with svc.session("vel") as session:
                    results[i] = session.progressive(tolerances)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i in range(4):
            assert len(results[i]) == len(tolerances)
            for got, ref in zip(results[i], reference):
                np.testing.assert_array_equal(got.data, ref.data)
                assert got.incremental_bytes == ref.incremental_bytes
        # every session's traffic is accounted as either cold or cached;
        # the cache additionally carried one index resolve per session
        stats = svc.cache.stats()
        index_traffic = 4 * dir_store.size_of("vel.index")
        assert stats["miss_bytes"] + stats["hit_bytes"] == index_traffic + sum(
            r.cold_bytes + r.cache_hit_bytes
            for rs in results.values() for r in rs
        )

    def test_prefetch_warms_next_group(self, dir_store):
        svc = RetrievalService(
            dir_store, cache_bytes=64 << 20, prefetch=True, num_workers=2
        )
        session = svc.session("vel")
        session.reconstruct(tolerance=1e-1)
        svc.drain_prefetch()
        assert svc.prefetch_requests > 0
        # the next unfetched group of each level is already resident
        for lv, have in zip(session.field.levels, session.fetched_groups):
            if have < len(lv.refs):
                assert lv.refs[have].key in svc.cache
        # so the tighter follow-up step reads less cold than its increment
        r = session.reconstruct(tolerance=1e-4)
        assert r.cache_hit_bytes > 0
        assert r.cold_bytes < r.incremental_bytes
        svc.close()

    def test_retrieve_qoi_through_service(self, tmp_path):
        shape = (12, 12, 12)
        rng = {}
        store = DirectoryStore(tmp_path / "qoi")
        for i, name in enumerate(("Vx", "Vy", "Vz")):
            rng[name] = gen.gaussian_random_field(
                shape, -2.0, seed=20 + i, dtype=np.float64
            )
            store_field(store, refactor(rng[name], name=name))
        svc = RetrievalService(store, cache_bytes=64 << 20)
        tol = 1e-2
        result = svc.retrieve_qoi(v_total(["Vx", "Vy", "Vz"]), tol)
        assert result.estimated_error <= tol
        assert result.cold_bytes > 0
        assert result.history[-1].cold_bytes == result.cold_bytes
        # second identical query is served from the shared cache
        again = svc.retrieve_qoi(v_total(["Vx", "Vy", "Vz"]), tol)
        assert again.cold_bytes == 0
        assert again.cache_hit_bytes > 0
        np.testing.assert_array_equal(result.qoi_values, again.qoi_values)

    def test_stats_shape(self, dir_store):
        svc = RetrievalService(dir_store)
        svc.session("vel").reconstruct(tolerance=1e-2)
        stats = svc.stats()
        assert stats["cache"]["misses"] > 0
        assert stats["store_bytes_read"] == dir_store.bytes_read

    def test_validates_workers_only_when_prefetching(self, dir_store):
        with pytest.raises(ValueError):
            RetrievalService(dir_store, prefetch=True, num_workers=0)
        # without prefetch the pool is never used; 0 workers is fine
        svc = RetrievalService(dir_store, prefetch=False, num_workers=0)
        r = svc.session("vel").reconstruct(tolerance=1e-2)
        assert r.cold_bytes > 0

    def test_prefetch_failures_are_swallowed_and_counted(self, dir_store):
        svc = RetrievalService(
            dir_store, prefetch=True, num_workers=1
        )
        pool = svc._worker_pool()
        with svc._futures_lock:
            svc._prefetch_futures.append(
                pool.submit(svc._safe_warm, "no-such-segment")
            )
        svc.drain_prefetch()  # must not raise
        assert svc.prefetch_failures == 1
        assert svc.stats()["prefetch_failures"] == 1
        svc.close()

    def test_concurrent_same_key_misses_read_store_once(self):
        """The in-flight dedupe: one store read per key under contention."""
        store = MemoryStore()
        store.put("k", b"x" * 64)
        gate = threading.Event()
        original_get = store.get

        def slow_get(key):
            gate.wait(timeout=5.0)
            return original_get(key)

        store.get = slow_get
        cache = SegmentCache(store, max_bytes=1 << 20)
        results = []

        def worker():
            results.append(cache.resolve("k"))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        assert store.reads == 1  # one leader; followers piggybacked
        assert sorted(cold for _, cold in results) == [False] * 3 + [True]
        assert all(blob == b"x" * 64 for blob, _ in results)
