"""Incremental plane-group decode engine + planner/result integrity.

The central property (ISSUE 4): walking a tolerance staircase with the
incremental engine is *bit-identical* to a from-scratch full decode at
every step — for eager and store-backed lazy fields, serial and pooled
decoding, tolerance-driven and explicit-plan stepping — while decoding
only the newly fetched plane groups (asserted via the instrumented
decode counters). Plus regression tests for the four verified
state/validation bugs fixed alongside it.
"""

import numpy as np
import pytest

from repro.bitplane.encoding import (
    apply_planes,
    begin_decode_state,
    decode_bitplanes,
    decode_bitplanes_incremental,
    encode_bitplanes,
    finalize_decode,
)
from repro.core.planner import plan_greedy, plan_round_robin
from repro.core.reconstruct import Reconstructor, reconstruct
from repro.core.refactor import RefactorConfig, refactor
from repro.core.service import RetrievalService
from repro.core.store import MemoryStore, open_field, store_field
from repro.data import generators as gen

STAIRCASE = [1e-1, 1e-2, 1e-3, 1e-4]


@pytest.fixture(scope="module")
def field_f64():
    data = gen.gaussian_random_field((16, 17, 18), -2.5, seed=2,
                                     dtype=np.float64)
    return refactor(data), data


@pytest.fixture(scope="module")
def field_nega():
    data = gen.gaussian_random_field((12, 13, 11), -2.0, seed=5,
                                     dtype=np.float32)
    cfg = RefactorConfig(signed_encoding="negabinary")
    return refactor(data, cfg), data


def _lazy_copy(field):
    store = MemoryStore()
    store_field(store, field)
    return open_field(store, field.name)


# ---------------------------------------------------------------------
# Codec level: resumable decode == full decode, bit for bit
# ---------------------------------------------------------------------
class TestResumableCodec:
    @pytest.mark.parametrize("design", ["register_block", "locality_block"])
    @pytest.mark.parametrize("encoding", ["sign_magnitude", "negabinary"])
    def test_chained_resume_matches_full_decode(self, design, encoding):
        rng = np.random.default_rng(11)
        data = rng.standard_normal(777).astype(np.float64)
        stream = encode_bitplanes(
            data, num_bitplanes=20, design=design, signed_encoding=encoding
        )
        checkpoints = [0, 1, 2, 7, 13, stream.num_planes]
        state = None
        for k in checkpoints:
            values, state = decode_bitplanes_incremental(stream, k, state)
            reference = decode_bitplanes(stream, k)
            assert np.array_equal(values, reference)
            assert state.planes_applied == k

    def test_single_plane_steps_match(self):
        rng = np.random.default_rng(3)
        data = (rng.standard_normal(65) * 40).astype(np.float32)
        stream = encode_bitplanes(data, num_bitplanes=12)
        state = None
        for k in range(stream.num_planes + 1):
            values, state = decode_bitplanes_incremental(stream, k, state)
            assert np.array_equal(values, decode_bitplanes(stream, k))

    def test_finalize_leaves_state_reusable(self):
        data = np.linspace(-1, 1, 50)
        stream = encode_bitplanes(data, num_bitplanes=16)
        _, state = decode_bitplanes_incremental(stream, 4)
        first = finalize_decode(state)
        second = finalize_decode(state)  # idempotent, no state mutation
        assert np.array_equal(first, second)
        values, _ = decode_bitplanes_incremental(
            stream, stream.num_planes, state
        )
        assert np.array_equal(values, decode_bitplanes(stream))

    def test_apply_planes_requires_contiguous_resume(self):
        stream = encode_bitplanes(np.arange(9.0), num_bitplanes=8)
        state = begin_decode_state(
            num_elements=stream.num_elements,
            num_bitplanes=stream.num_bitplanes,
            exponent=stream.exponent,
            max_abs=stream.max_abs,
            dtype=stream.dtype,
            layout=stream.layout,
            warp_size=stream.warp_size,
        )
        with pytest.raises(ValueError, match="resume at plane 0"):
            apply_planes(state, stream.planes[2:4], 2)

    def test_apply_planes_rejects_overflow(self):
        stream = encode_bitplanes(np.arange(9.0), num_bitplanes=8)
        _, state = decode_bitplanes_incremental(stream)
        with pytest.raises(ValueError, match="stored planes"):
            apply_planes(state, stream.planes[:1], state.planes_applied)

    def test_resume_cannot_go_backwards(self):
        stream = encode_bitplanes(np.arange(9.0), num_bitplanes=8)
        _, state = decode_bitplanes_incremental(stream, 5)
        with pytest.raises(ValueError, match="fresh state"):
            decode_bitplanes_incremental(stream, 3, state)

    def test_state_stream_mismatch_rejected(self):
        a = encode_bitplanes(np.arange(9.0), num_bitplanes=8)
        b = encode_bitplanes(np.arange(10.0), num_bitplanes=8)
        _, state = decode_bitplanes_incremental(a, 3)
        with pytest.raises(ValueError, match="does not match"):
            decode_bitplanes_incremental(b, 5, state)

    def test_state_dtype_mismatch_rejected(self):
        # Same geometry, different output dtype: resuming would
        # silently break bit-identity with decode_bitplanes.
        a = encode_bitplanes(np.arange(9.0, dtype=np.float32),
                             num_bitplanes=8)
        b = encode_bitplanes(np.arange(9.0, dtype=np.float64),
                             num_bitplanes=8)
        _, state = decode_bitplanes_incremental(a, 3)
        with pytest.raises(ValueError, match="does not match"):
            decode_bitplanes_incremental(b, 5, state)

    def test_empty_apply_is_identity(self):
        stream = encode_bitplanes(np.arange(33.0), num_bitplanes=8)
        _, state = decode_bitplanes_incremental(stream, 3)
        assert apply_planes(state, [], 3) is state

    def test_state_nbytes_counts_retained_arrays(self):
        stream = encode_bitplanes(np.arange(100.0), num_bitplanes=8)
        _, state = decode_bitplanes_incremental(stream, 2)
        assert state.nbytes == state.words.nbytes + state.signs.nbytes


# ---------------------------------------------------------------------
# Reconstructor: staircases are bit-identical to from-scratch decodes
# ---------------------------------------------------------------------
class TestIncrementalReconstructor:
    @pytest.mark.parametrize("lazy", [False, True], ids=["eager", "lazy"])
    @pytest.mark.parametrize("num_workers", [0, 4])
    def test_staircase_bit_identical_tolerance_driven(
        self, field_f64, lazy, num_workers
    ):
        field, data = field_f64
        inc_field = _lazy_copy(field) if lazy else field
        ful_field = _lazy_copy(field) if lazy else field
        inc = Reconstructor(inc_field, num_workers=num_workers)
        full = Reconstructor(ful_field, num_workers=num_workers,
                             incremental=False)
        for tol in STAIRCASE:
            ri = inc.reconstruct(tolerance=tol)
            rf = full.reconstruct(tolerance=tol)
            assert np.array_equal(ri.data, rf.data)
            assert inc.fetched_groups == full.fetched_groups
            assert ri.fetched_bytes == rf.fetched_bytes
            # From-scratch single-shot at the same cumulative plan.
            scratch = Reconstructor(
                _lazy_copy(field) if lazy else field
            ).reconstruct(plan=ri.plan)
            assert np.array_equal(ri.data, scratch.data)
            err = float(np.max(np.abs(ri.data - data)))
            assert err <= ri.error_bound

    def test_staircase_bit_identical_negabinary(self, field_nega):
        field, data = field_nega
        inc = Reconstructor(field)
        full = Reconstructor(field, incremental=False)
        for tol in STAIRCASE:
            ri = inc.reconstruct(tolerance=tol, relative=True)
            rf = full.reconstruct(tolerance=tol, relative=True)
            assert np.array_equal(ri.data, rf.data)
            err = float(np.max(np.abs(
                ri.data.astype(np.float64) - data.astype(np.float64)
            )))
            assert err <= ri.error_bound

    def test_explicit_plan_staircase(self, field_f64):
        field, _ = field_f64
        plans = [plan_greedy(field, tol) for tol in STAIRCASE]
        inc = Reconstructor(field)
        for plan in plans:
            ri = inc.reconstruct(plan=plan)
            scratch = Reconstructor(field).reconstruct(plan=plan)
            assert np.array_equal(ri.data, scratch.data)

    def test_refinement_decodes_only_increment(self, field_f64):
        field, _ = field_f64
        recon = Reconstructor(field)
        prev = [0] * len(field.levels)
        for tol in STAIRCASE:
            r = recon.reconstruct(tolerance=tol)
            new_groups = sum(
                g - p for g, p in zip(recon.fetched_groups, prev)
            )
            assert r.decoded_groups == new_groups
            prev = recon.fetched_groups
        # Re-asking for an already-met tolerance does no decode work.
        before = recon.decode_counters.snapshot()
        r = recon.reconstruct(tolerance=STAIRCASE[-1])
        assert r.decoded_groups == 0 and r.decoded_planes == 0
        delta = recon.decode_counters.since(before)
        assert delta.groups_decoded == 0 and delta.planes_decoded == 0
        assert delta.level_reuses == len(field.levels)

    def test_lazy_refinement_fetches_only_new_segments(self, field_f64):
        field, _ = field_f64
        lazy = _lazy_copy(field)
        recon = Reconstructor(lazy)
        recon.reconstruct(tolerance=STAIRCASE[0])
        reads_after_first = lazy.io_counters.segment_reads
        r = recon.reconstruct(tolerance=STAIRCASE[-1])
        new_reads = lazy.io_counters.segment_reads - reads_after_first
        assert new_reads == r.decoded_groups  # one segment per new group

    def test_full_mode_keeps_no_state(self, field_f64):
        field, _ = field_f64
        full = Reconstructor(field, incremental=False)
        full.reconstruct(tolerance=1e-3)
        assert full.decode_state_bytes() == 0

    def test_decode_state_bytes_reported(self, field_f64):
        field, _ = field_f64
        recon = Reconstructor(field)
        assert recon.decode_state_bytes() == 0
        recon.reconstruct(tolerance=1e-2)
        assert recon.decode_state_bytes() > 0


# ---------------------------------------------------------------------
# Bug 1: non-finite tolerances must be rejected, not silently planned
# ---------------------------------------------------------------------
class TestNonFiniteTolerance:
    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_planners_reject(self, field_f64, bad):
        field, _ = field_f64
        with pytest.raises(ValueError, match="finite"):
            plan_greedy(field, bad)
        with pytest.raises(ValueError, match="finite"):
            plan_round_robin(field, bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_reconstruct_rejects(self, field_f64, bad):
        field, _ = field_f64
        recon = Reconstructor(field)
        with pytest.raises(ValueError, match="finite"):
            recon.reconstruct(tolerance=bad)
        with pytest.raises(ValueError, match="finite"):
            recon.reconstruct(tolerance=bad, relative=True)


# ---------------------------------------------------------------------
# Bug 2: malformed explicit plans fail at the API boundary
# ---------------------------------------------------------------------
class TestPlanValidation:
    def test_short_plan_rejected(self, field_f64):
        field, _ = field_f64
        plan = plan_greedy(field, 1e-2)
        plan.groups_per_level = plan.groups_per_level[:1]
        with pytest.raises(ValueError, match="levels"):
            Reconstructor(field).reconstruct(plan=plan)

    def test_long_plan_rejected(self, field_f64):
        field, _ = field_f64
        plan = plan_greedy(field, 1e-2)
        plan.groups_per_level = plan.groups_per_level + [1]
        with pytest.raises(ValueError, match="levels"):
            Reconstructor(field).reconstruct(plan=plan)

    def test_out_of_range_group_count_rejected(self, field_f64):
        field, _ = field_f64
        plan = plan_greedy(field, 1e-2)
        plan.groups_per_level = list(plan.groups_per_level)
        plan.groups_per_level[0] = field.levels[0].num_groups + 3
        with pytest.raises(ValueError, match="outside"):
            Reconstructor(field).reconstruct(plan=plan)
        plan.groups_per_level[0] = -1
        with pytest.raises(ValueError, match="outside"):
            Reconstructor(field).reconstruct(plan=plan)


# ---------------------------------------------------------------------
# Bug 3: relative results record the resolved absolute tolerance
# ---------------------------------------------------------------------
class TestRelativeToleranceRecording:
    def test_absolute_request_records_no_fraction(self, field_f64):
        field, _ = field_f64
        r = reconstruct(field, tolerance=1e-2)
        assert r.tolerance == 1e-2
        assert r.relative_tolerance is None

    def test_relative_request_records_resolved_absolute(self, field_f64):
        field, _ = field_f64
        r = reconstruct(field, tolerance=1e-2, relative=True)
        assert r.tolerance == pytest.approx(1e-2 * field.value_range)
        assert r.relative_tolerance == 1e-2
        # The comparison users actually write is now meaningful.
        assert r.error_bound <= r.tolerance

    def test_near_lossless_records_nan(self, field_f64):
        field, _ = field_f64
        r = reconstruct(field)
        assert np.isnan(r.tolerance)
        assert r.relative_tolerance is None


# ---------------------------------------------------------------------
# Bug 4: failed fetch/decode must not commit progressive state
# ---------------------------------------------------------------------
class _FlakyStore:
    """Segment reader that fails the next *fail_times* segment gets."""

    def __init__(self, store, fail_times=0):
        self._store = store
        self.fail_times = fail_times

    def get(self, key):
        if ".G" in key and self.fail_times > 0:
            self.fail_times -= 1
            raise OSError(f"transient store failure on {key}")
        return self._store.get(key)

    def size_of(self, key):
        return self._store.size_of(key)

    def keys(self):
        return self._store.keys()

    def __contains__(self, key):
        return key in self._store


class TestCommitOnlyAfterDecode:
    def _flaky_field(self, field, fail_times=0):
        store = MemoryStore()
        store_field(store, field)
        flaky = _FlakyStore(store, fail_times)
        return flaky, open_field(flaky, field.name)

    def test_failed_first_step_leaves_session_clean(self, field_f64):
        field, _ = field_f64
        flaky, lazy = self._flaky_field(field, fail_times=1)
        recon = Reconstructor(lazy)
        with pytest.raises(OSError):
            recon.reconstruct(tolerance=1e-3)
        assert recon.fetched_groups == [0] * len(field.levels)
        assert recon.fetched_bytes == 0
        assert recon.decode_state_bytes() == 0
        assert recon.decode_counters.groups_decoded == 0
        # Retry succeeds and is bit-identical to an untroubled session.
        r = recon.reconstruct(tolerance=1e-3)
        clean = Reconstructor(field, incremental=False).reconstruct(
            tolerance=1e-3
        )
        assert np.array_equal(r.data, clean.data)
        assert r.fetched_bytes == clean.fetched_bytes

    def test_failed_refinement_keeps_prior_step_state(self, field_f64):
        field, _ = field_f64
        flaky, lazy = self._flaky_field(field)
        recon = Reconstructor(lazy)
        first = recon.reconstruct(tolerance=1e-1)
        groups_before = recon.fetched_groups
        bytes_before = recon.fetched_bytes
        state_before = recon.decode_state_bytes()
        flaky.fail_times = 1
        with pytest.raises(OSError):
            recon.reconstruct(tolerance=1e-4)
        assert recon.fetched_groups == groups_before
        assert recon.fetched_bytes == bytes_before
        assert recon.decode_state_bytes() == state_before
        # The session still refines correctly once the store recovers.
        r = recon.reconstruct(tolerance=1e-4)
        clean = Reconstructor(field, incremental=False)
        clean.reconstruct(tolerance=1e-1)
        ref = clean.reconstruct(tolerance=1e-4)
        assert np.array_equal(r.data, ref.data)
        assert r.fetched_bytes == ref.fetched_bytes
        assert first.fetched_bytes == bytes_before


# ---------------------------------------------------------------------
# Bug 5 (+doc): relative tolerance on a constant field
# ---------------------------------------------------------------------
class TestConstantFieldRelative:
    @pytest.fixture(scope="class")
    def constant_field(self):
        data = np.full((12, 13), 5.0, dtype=np.float64)
        return refactor(data), data

    def test_short_circuits_to_near_lossless(self, constant_field):
        field, data = constant_field
        assert field.value_range == 0.0
        r = reconstruct(field, tolerance=0.05, relative=True)
        # Deliberate near-lossless retrieval, with honest bookkeeping:
        # the resolved absolute tolerance is 0 and the full stream is
        # planned (same plan as tolerance=None), not an accident.
        assert r.tolerance == 0.0
        assert r.relative_tolerance == 0.05
        assert r.plan.groups_per_level == field.max_groups()
        assert float(np.max(np.abs(r.data - data))) <= r.error_bound

    def test_negative_relative_tolerance_still_rejected(
        self, constant_field
    ):
        # The short-circuit must not bypass sign validation (a negative
        # fraction on a constant field previously slipped through to
        # plan_full without any error).
        field, _ = constant_field
        with pytest.raises(ValueError, match=">= 0"):
            reconstruct(field, tolerance=-0.5, relative=True)

    def test_staircase_on_constant_field_is_stable(self, constant_field):
        field, _ = constant_field
        recon = Reconstructor(field)
        r1 = recon.reconstruct(tolerance=1e-1, relative=True)
        r2 = recon.reconstruct(tolerance=1e-3, relative=True)
        assert np.array_equal(r1.data, r2.data)
        assert r2.incremental_bytes == 0  # already fully fetched
        assert r2.decoded_groups == 0


# ---------------------------------------------------------------------
# Service integration: sessions expose decode-state residency
# ---------------------------------------------------------------------
class TestServiceDecodeState:
    def test_stats_report_session_decode_state(self, field_f64):
        field, _ = field_f64
        store = MemoryStore()
        store_field(store, field)
        service = RetrievalService(store)
        with service.session(field.name) as session:
            assert service.stats()["sessions"]["open"] == 1
            assert session.decode_state_bytes == 0
            session.reconstruct(tolerance=1e-2)
            stats = service.stats()
            assert stats["sessions"]["decode_state_bytes"] > 0
            assert (session.stats()["decode_state_bytes"]
                    == session.decode_state_bytes)
        # close() unregisters the session.
        assert service.stats()["sessions"]["open"] == 0
        service.close()

    def test_session_staircase_matches_full_decode(self, field_f64):
        field, _ = field_f64
        store = MemoryStore()
        store_field(store, field)
        service = RetrievalService(store)
        with service.session(field.name) as session:
            for tol in STAIRCASE:
                r = session.reconstruct(tolerance=tol)
                ref = Reconstructor(field, incremental=False).reconstruct(
                    plan=r.plan
                )
                assert np.array_equal(r.data, ref.data)
        service.close()
