"""Unit tests for repro.util.metrics."""

import math

import numpy as np
import pytest

from repro.util import metrics


class TestLinfError:
    def test_identical_arrays(self):
        a = np.arange(10.0)
        assert metrics.linf_error(a, a.copy()) == 0.0

    def test_known_difference(self):
        a = np.zeros(5)
        b = np.array([0.0, -3.0, 1.0, 0.5, 0.0])
        assert metrics.linf_error(a, b) == 3.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            metrics.linf_error(np.zeros(3), np.zeros(4))

    def test_empty(self):
        assert metrics.linf_error(np.zeros(0), np.zeros(0)) == 0.0

    def test_float32_inputs_promote(self):
        a = np.float32([1e8])
        b = np.float32([1e8 + 64])
        assert metrics.linf_error(a, b) == pytest.approx(64.0)


class TestRelativeLinf:
    def test_normalizes_by_range(self):
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 10.0])
        assert metrics.relative_linf_error(a, b) == pytest.approx(0.1)

    def test_zero_range_falls_back_to_absolute(self):
        a = np.array([2.0, 2.0])
        b = np.array([2.5, 2.0])
        assert metrics.relative_linf_error(a, b) == pytest.approx(0.5)


class TestL2Psnr:
    def test_l2_known(self):
        a = np.zeros(4)
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert metrics.l2_error(a, b) == pytest.approx(1.0)

    def test_psnr_exact_match_is_inf(self):
        a = np.linspace(0, 1, 16)
        assert metrics.psnr(a, a.copy()) == math.inf

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal(1000)
        small = a + 1e-6 * rng.standard_normal(1000)
        large = a + 1e-2 * rng.standard_normal(1000)
        assert metrics.psnr(a, small) > metrics.psnr(a, large)


class TestRates:
    def test_bitrate(self):
        assert metrics.bitrate(100, 100) == 8.0
        assert metrics.bitrate(50, 100) == 4.0

    def test_bitrate_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            metrics.bitrate(10, 0)

    def test_compression_ratio(self):
        assert metrics.compression_ratio(100, 25) == 4.0
        assert metrics.compression_ratio(100, 0) == math.inf

    def test_throughput(self):
        assert metrics.throughput_gbps(2e9, 2.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            metrics.throughput_gbps(1, 0.0)
