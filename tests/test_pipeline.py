"""Tests for the Fig. 4 pipeline DAGs, speedup evaluation, and scaling."""

import numpy as np
import pytest

from repro.gpu.device import H100, MI250X
from repro.gpu.events import Task
from repro.gpu.hdem import HostDeviceModel
from repro.pipeline.dag import (
    build_reconstruct_dag,
    build_refactor_dag,
    critical_path_seconds,
    serial_chain,
)
from repro.pipeline.executor import PipelinedExecutor
from repro.pipeline.multigpu import (
    FRONTIER_NODE,
    TALAPAS_NODE,
    NodeSpec,
    effective_link_gbps,
    weak_scaling,
)
from repro.pipeline.scheduler import (
    StageCosts,
    pipeline_speedup,
    reconstruct_stage_costs,
    refactor_stage_costs,
)


def uniform_stages(n=8, input_s=0.5, kernel_s=0.5, lossless_s=1.0,
                   serialize_s=0.1, output_s=0.3):
    # Ratios follow the cost model's profile for real sub-domains: the
    # exclusive lossless stage dominates, kernels and input DMA are
    # comparable, serialization is small.
    return [
        StageCosts(input_s, kernel_s, lossless_s, serialize_s, output_s)
        for _ in range(n)
    ]


class TestStageCosts:
    def test_total(self):
        s = StageCosts(1, 2, 3, 4, 5)
        assert s.total == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            StageCosts(-1, 0, 0, 0, 0)

    def test_from_cost_model(self):
        model = HostDeviceModel(H100)
        s = refactor_stage_costs(
            model, num_elements=1 << 24, elem_bytes=4, ndim=3,
            num_levels=4, num_bitplanes=32,
            compressed_bytes=30 << 20,
            bytes_by_method={"huffman": 20 << 20, "direct": 40 << 20},
        )
        assert s.input_s > 0 and s.kernel_s > 0 and s.lossless_s > 0
        # DMA of 64 MB at 55 GB/s ~ 1.2 ms
        assert s.input_s == pytest.approx((1 << 26) / 55e9, rel=0.01)

    def test_reconstruct_costs(self):
        model = HostDeviceModel(MI250X)
        s = reconstruct_stage_costs(
            model, num_elements=1 << 24, elem_bytes=4, ndim=3,
            num_levels=4, num_bitplanes=32,
            fetched_bytes=20 << 20,
            bytes_by_method={"huffman": 10 << 20, "rle": 10 << 20},
        )
        assert s.output_s > s.input_s  # raw out bigger than fetched in


class TestDagStructure:
    def test_refactor_task_count(self):
        tasks = build_refactor_dag(uniform_stages(4))
        assert len(tasks) == 4 * 5

    def test_reconstruct_task_count(self):
        tasks = build_reconstruct_dag(uniform_stages(3))
        assert len(tasks) == 3 * 4

    def test_refactor_prefetch_deps(self):
        tasks = {t.name: t for t in build_refactor_dag(uniform_stages(3))}
        assert "S0" in tasks["I2"].deps  # buffer freed after serialization
        assert "I1" in tasks["Z0"].deps  # prefetch lands before yellow

    def test_reconstruct_delay_deps(self):
        tasks = {t.name: t for t in build_reconstruct_dag(uniform_stages(3))}
        assert "X0" in tasks["I1"].deps
        assert "X1" in tasks["O0"].deps

    def test_serial_variant_chains(self):
        tasks = {t.name: t for t in
                 build_refactor_dag(uniform_stages(3), pipelined=False)}
        assert tasks["I1"].deps == ("O0",)

    def test_yellow_tasks_exclusive(self):
        for builder in (build_refactor_dag, build_reconstruct_dag):
            tasks = builder(uniform_stages(2))
            yellow = [t for t in tasks if t.exclusive]
            assert len(yellow) == 2

    def test_serial_chain_helper(self):
        tasks = [Task("a", "h2d", 1.0), Task("b", "compute", 1.0)]
        chained = serial_chain(tasks)
        assert chained[1].deps == ("a",)

    def test_critical_path(self):
        tasks = [
            Task("a", "h2d", 1.0),
            Task("b", "compute", 2.0, deps=("a",)),
            Task("c", "d2h", 3.0),
        ]
        assert critical_path_seconds(tasks) == 3.0


class TestPipelineSpeedup:
    def test_pipelined_not_slower(self):
        model = HostDeviceModel(H100)
        serial, pipelined, speedup = pipeline_speedup(
            model, uniform_stages(8), "refactor"
        )
        assert pipelined <= serial + 1e-9
        assert speedup >= 1.0

    @pytest.mark.parametrize("direction", ["refactor", "reconstruct"])
    def test_meaningful_overlap(self, direction):
        """With balanced stages the pipeline must actually overlap —
        the Fig. 9 regime is ~1.4-1.8x."""
        model = HostDeviceModel(H100)
        _, _, speedup = pipeline_speedup(
            model, uniform_stages(16), direction
        )
        assert speedup > 1.2

    def test_correctness_constraints_hold(self):
        model = HostDeviceModel(H100)
        tasks = build_refactor_dag(uniform_stages(8))
        tl = model.run(tasks)
        tl.validate(tasks)  # raises on any violation

    def test_invalid_direction(self):
        model = HostDeviceModel(H100)
        with pytest.raises(ValueError):
            pipeline_speedup(model, uniform_stages(2), "sideways")


class TestExecutor:
    def test_actions_run_in_dep_order(self):
        model = HostDeviceModel(H100)
        order = []
        tasks = [
            Task("a", "h2d", 1e-3),
            Task("b", "compute", 1e-3, deps=("a",)),
            Task("c", "d2h", 1e-3, deps=("b",)),
        ]
        actions = {name: (lambda n=name: order.append(n) or n)
                   for name in "abc"}
        tl, results = PipelinedExecutor(model).execute(tasks, actions)
        assert order == ["a", "b", "c"]
        assert results["b"] == "b"
        assert tl.makespan > 0

    def test_unknown_action_rejected(self):
        model = HostDeviceModel(H100)
        with pytest.raises(ValueError):
            PipelinedExecutor(model).execute(
                [Task("a", "h2d", 1.0)], {"ghost": lambda: None}
            )


class TestMultiGpu:
    def test_node_validation(self):
        with pytest.raises(ValueError):
            NodeSpec("bad", H100, 0, 100.0)
        with pytest.raises(ValueError):
            NodeSpec("bad", H100, 4, -1.0)

    def test_effective_link_contention(self):
        assert effective_link_gbps(TALAPAS_NODE, 1) == pytest.approx(55.0)
        assert effective_link_gbps(TALAPAS_NODE, 4) == pytest.approx(
            TALAPAS_NODE.host_link_total_gbps / 4)
        with pytest.raises(ValueError):
            effective_link_gbps(TALAPAS_NODE, 5)

    @pytest.mark.parametrize("node,counts", [
        (TALAPAS_NODE, [1, 2, 4]),
        (FRONTIER_NODE, [1, 2, 4, 8]),
    ])
    def test_weak_scaling_efficiency_regime(self, node, counts):
        """Fig. 10: ~95% (H100/4) and ~89% (MI250X/8) of ideal speedup;
        we require the 80-100% regime with monotone decline."""
        stages = uniform_stages(8, input_s=0.1, kernel_s=0.08,
                                lossless_s=0.05, serialize_s=0.01,
                                output_s=0.04)
        points = weak_scaling(node, stages, per_gpu_bytes=1 << 30,
                              gpu_counts=counts)
        effs = [p.efficiency for p in points]
        assert effs[0] == pytest.approx(1.0)
        # These synthetic stages are more DMA-heavy than the realistic
        # profile (which lands at the paper's 95%/89%; asserted in the
        # Fig. 10 benchmark), so allow a lower floor here.
        assert all(0.70 <= e <= 1.0 + 1e-9 for e in effs)
        assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))

    def test_throughput_grows_with_gpus(self):
        stages = uniform_stages(4, input_s=0.01, kernel_s=0.01,
                                lossless_s=0.004, serialize_s=0.001,
                                output_s=0.004)
        points = weak_scaling(FRONTIER_NODE, stages,
                              per_gpu_bytes=1 << 30, gpu_counts=[1, 4, 8])
        tps = [p.throughput_gbps for p in points]
        assert tps[0] < tps[1] < tps[2]
