"""Tests for the synthetic dataset generators (Table 1 substitutes)."""

import numpy as np
import pytest

from repro.data import generators as gen
from repro.data.registry import DATASETS, load_dataset, load_velocity_fields


class TestGaussianRandomField:
    def test_deterministic_in_seed(self):
        a = gen.gaussian_random_field((16, 16, 16), seed=7)
        b = gen.gaussian_random_field((16, 16, 16), seed=7)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = gen.gaussian_random_field((16, 16, 16), seed=1)
        b = gen.gaussian_random_field((16, 16, 16), seed=2)
        assert not np.array_equal(a, b)

    def test_normalized(self):
        f = gen.gaussian_random_field((32, 32, 32), seed=0, dtype=np.float64)
        assert abs(f.std() - 1.0) < 1e-6
        assert abs(f.mean()) < 0.5

    def test_steeper_spectrum_is_smoother(self):
        rough = gen.gaussian_random_field((32, 32, 32), 0.0, seed=3,
                                          dtype=np.float64)
        smooth = gen.gaussian_random_field((32, 32, 32), -4.0, seed=3,
                                           dtype=np.float64)
        # Smoothness proxy: variance of first differences relative to field.
        def roughness(f):
            return np.mean(np.diff(f, axis=0) ** 2) / np.var(f)
        assert roughness(smooth) < roughness(rough)

    def test_dtype_and_contiguity(self):
        f = gen.gaussian_random_field((8, 8, 8), seed=0, dtype=np.float32)
        assert f.dtype == np.float32
        assert f.flags["C_CONTIGUOUS"]

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            gen.gaussian_random_field((8, 8), seed=0)  # type: ignore[arg-type]


class TestDomainGenerators:
    def test_lognormal_positive(self):
        f = gen.lognormal_density((16, 16, 16), seed=0)
        assert np.all(f > 0)
        assert f.mean() == pytest.approx(1.0, rel=1e-3)

    def test_interface_field_float64(self):
        f = gen.interface_field((16, 16, 16), seed=0)
        assert f.dtype == np.float64
        assert np.isfinite(f).all()

    def test_hurricane_has_vortex_peak(self):
        f = gen.hurricane_field((8, 32, 32), seed=0, dtype=np.float64)
        assert f.max() > 3 * f.std()

    def test_turbulence_components_independent(self):
        vx, vy, vz = gen.turbulence_velocity((16, 16, 16), seed=0)
        assert not np.array_equal(vx, vy)
        assert not np.array_equal(vy, vz)
        corr = np.corrcoef(vx.ravel(), vy.ravel())[0, 1]
        assert abs(corr) < 0.2

    def test_letkf_finite(self):
        f = gen.letkf_field((8, 16, 16), seed=0)
        assert np.isfinite(f).all()


class TestRegistry:
    def test_all_paper_rows_present(self):
        assert set(DATASETS) == {"NYX", "LETKF", "Miranda", "ISABEL", "JHTDB"}

    def test_table1_dims_and_dtypes(self):
        assert DATASETS["NYX"].paper_dims == (512, 512, 512)
        assert DATASETS["LETKF"].paper_dims == (98, 1200, 1200)
        assert DATASETS["Miranda"].dtype == np.float64
        assert DATASETS["JHTDB"].paper_size_gb == pytest.approx(48.0)
        assert DATASETS["NYX"].num_variables == 6

    def test_load_dataset_default_dims(self):
        f = load_dataset("Miranda")
        assert f.shape == DATASETS["Miranda"].default_dims
        assert f.dtype == np.float64

    def test_load_dataset_custom_dims(self):
        f = load_dataset("NYX", dims=(8, 8, 8))
        assert f.shape == (8, 8, 8)
        assert f.dtype == np.float32

    def test_load_unknown_raises(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_velocity_fields(self):
        vx, vy, vz = load_velocity_fields("NYX", dims=(8, 8, 8))
        assert vx.shape == vy.shape == vz.shape == (8, 8, 8)
        assert vx.dtype == np.float32

    def test_jhtdb_scalar_is_velocity_component(self):
        f = load_dataset("JHTDB", dims=(8, 8, 8))
        assert f.dtype == np.float32
