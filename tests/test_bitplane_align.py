"""Tests for exponent alignment and fixed-point conversion."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bitplane.align import (
    align_to_fixed_point,
    compute_exponent,
    from_fixed_point,
    plane_error_bound,
)


class TestComputeExponent:
    def test_zero(self):
        assert compute_exponent(0.0) == 0

    @pytest.mark.parametrize(
        "value,expected",
        [(1.0, 1), (0.5, 0), (0.99, 0), (2.0, 2), (3.7, 2), (1e-3, -9)],
    )
    def test_known_values(self, value, expected):
        e = compute_exponent(value)
        assert e == expected
        assert value < 2.0 ** e <= 2 * value

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            compute_exponent(-1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            compute_exponent(float("nan"))


class TestAlignment:
    def test_magnitudes_in_range(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(1000).astype(np.float32)
        a = align_to_fixed_point(data, 32)
        assert a.magnitudes.dtype == np.uint64
        assert a.magnitudes.max() < (1 << 32)

    def test_signs_match(self):
        data = np.array([-1.0, 2.0, -3.0, 0.0], dtype=np.float64)
        a = align_to_fixed_point(data, 16)
        np.testing.assert_array_equal(a.signs, [1, 0, 1, 0])

    def test_all_zero_data(self):
        a = align_to_fixed_point(np.zeros(10, dtype=np.float32), 32)
        assert a.max_abs == 0.0
        assert np.all(a.magnitudes == 0)
        rec = from_fixed_point(a)
        np.testing.assert_array_equal(rec, np.zeros(10, dtype=np.float32))

    def test_rejects_nan_data(self):
        with pytest.raises(ValueError, match="finite"):
            align_to_fixed_point(np.array([1.0, np.nan]), 8)

    def test_rejects_bad_plane_count(self):
        data = np.ones(4, dtype=np.float32)
        with pytest.raises(ValueError):
            align_to_fixed_point(data, 0)
        with pytest.raises(ValueError):
            align_to_fixed_point(data, 61)

    def test_rejects_integer_dtype(self):
        with pytest.raises(TypeError):
            align_to_fixed_point(np.arange(4), 8)


class TestReconstruction:
    def test_full_planes_quantization_error(self):
        rng = np.random.default_rng(1)
        data = rng.uniform(-10, 10, 500)
        B = 40
        a = align_to_fixed_point(data, B)
        rec = from_fixed_point(a)
        bound = plane_error_bound(a.exponent, B, B, a.max_abs)
        assert np.max(np.abs(rec - data)) <= bound

    @pytest.mark.parametrize("kept", [0, 1, 4, 8, 16, 31, 32])
    def test_partial_planes_error_bound(self, kept):
        rng = np.random.default_rng(2)
        data = rng.standard_normal(2048)
        B = 32
        a = align_to_fixed_point(data, B)
        rec = from_fixed_point(a, kept_planes=kept)
        bound = plane_error_bound(a.exponent, B, kept, a.max_abs)
        assert np.max(np.abs(rec - data)) <= bound + 1e-15

    def test_monotone_error_in_planes(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal(512)
        a = align_to_fixed_point(data, 32)
        errors = [
            np.max(np.abs(from_fixed_point(a, kept_planes=k) - data))
            for k in range(0, 33, 4)
        ]
        assert all(e2 <= e1 + 1e-12 for e1, e2 in zip(errors, errors[1:]))

    def test_kept_planes_validation(self):
        a = align_to_fixed_point(np.ones(4), 8)
        with pytest.raises(ValueError):
            from_fixed_point(a, kept_planes=9)
        with pytest.raises(ValueError):
            from_fixed_point(a, kept_planes=-1)

    def test_preserves_dtype(self):
        a = align_to_fixed_point(np.ones(4, dtype=np.float32), 8)
        assert from_fixed_point(a).dtype == np.float32


class TestErrorBoundHelper:
    def test_zero_data_bound_is_zero(self):
        assert plane_error_bound(0, 32, 4, 0.0) == 0.0

    def test_bound_capped_by_max_abs(self):
        # Fetching nothing can never err more than max|x|.
        assert plane_error_bound(10, 32, 0, 3.0) == 3.0

    def test_bound_halves_per_plane(self):
        b1 = plane_error_bound(0, 32, 10, 1.0)
        b2 = plane_error_bound(0, 32, 11, 1.0)
        assert b2 == pytest.approx(b1 / 2)

    def test_rejects_negative_planes(self):
        with pytest.raises(ValueError):
            plane_error_bound(0, 32, -1, 1.0)


@settings(max_examples=50, deadline=None)
@given(
    data=hnp.arrays(
        dtype=np.float64,
        shape=st.integers(1, 300),
        elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
    ),
    kept=st.integers(0, 40),
)
def test_property_partial_decode_respects_bound(data, kept):
    """Hypothesis: the 2^(e-k) bound holds for arbitrary finite inputs."""
    B = 40
    a = align_to_fixed_point(data, B)
    rec = from_fixed_point(a, kept_planes=kept)
    bound = plane_error_bound(a.exponent, B, kept, a.max_abs)
    assert np.max(np.abs(rec - data)) <= bound * (1 + 1e-12) + 1e-300
