"""Fixture-driven tests for the reprolint static-analysis suite.

Each rule gets at least one true positive and one true negative on
synthetic snippets, plus pragma suppression and baseline round-trip
coverage.  The final test lints the real ``src/repro`` tree — the same
gate the CI lint job enforces — so a regression that reintroduces a
violation fails tier-1 directly.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import all_rules, fingerprints, lint_paths, lint_source
from tools.reprolint import baseline as baseline_mod
from tools.reprolint.__main__ import main as reprolint_main

CORE_PATH = "src/repro/core/fixture.py"


def run(source: str, rule_id: str, path: str = CORE_PATH):
    rules = [all_rules()[rule_id]]
    return lint_source(textwrap.dedent(source), path, rules=rules)


# -- R1 lock-discipline ----------------------------------------------------


R1_CLASS_HEADER = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0
"""


def test_r1_flags_unlocked_read_of_guarded_attr():
    result = run(R1_CLASS_HEADER + """
        def bump(self):
            with self._lock:
                self.count += 1

        def peek(self):
            return self.count
    """, "R1")
    assert len(result.findings) == 1
    assert result.findings[0].rule == "R1"
    assert "count" in result.findings[0].message
    assert "peek" not in result.findings[0].message  # message names the attr


def test_r1_accepts_locked_access_and_init_writes():
    result = run(R1_CLASS_HEADER + """
        def bump(self):
            with self._lock:
                self.count += 1

        def peek(self):
            with self._lock:
                return self.count
    """, "R1")
    assert result.findings == []


def test_r1_flags_unlocked_mutator_call():
    result = run("""
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = set()

            def register(self, item):
                with self._lock:
                    self._items.add(item)

            def forget(self, item):
                self._items.discard(item)
    """, "R1")
    assert len(result.findings) == 1
    assert "_items" in result.findings[0].message


def test_r1_caller_holds_lock_inference():
    # _insert is only ever called with the lock held, so its writes are
    # guarded and must not be flagged; the unlocked public caller is.
    result = run("""
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}

            def put(self, key, value):
                with self._lock:
                    self._insert(key, value)

            def _insert(self, key, value):
                self._entries[key] = value

            def sneak(self, key, value):
                self._entries[key] = value
    """, "R1")
    assert len(result.findings) == 1
    assert result.findings[0].snippet == "self._entries[key] = value"
    assert "sneak" not in {f.message for f in result.findings}  # one site


def test_r1_manual_acquire_counts_as_held():
    result = run(R1_CLASS_HEADER + """
        def bump(self):
            with self._lock:
                self.count += 1

        def drain(self):
            self._lock.acquire()
            try:
                return self.count
            finally:
                self._lock.release()
    """, "R1")
    assert result.findings == []


def test_r1_deferred_bound_method_is_not_a_call_site():
    # pool.submit(self._work) inside the lock must NOT make _work
    # lock-held: it executes later on another thread.
    result = run("""
        import threading

        class Service:
            def __init__(self, pool):
                self._lock = threading.Lock()
                self._pool = pool
                self.failures = 0
                self.requests = 0

            def kick(self):
                with self._lock:
                    self.requests += 1
                    self._pool.submit(self._work)

            def _work(self):
                self.failures += 1

            def stats(self):
                return self.failures
    """, "R1")
    assert result.findings == []


# -- R2 error-taxonomy -----------------------------------------------------


def test_r2_flags_swallowing_broad_handler_in_core():
    result = run("""
        def fetch(store, key):
            try:
                return store[key]
            except Exception:
                return None
    """, "R2")
    assert len(result.findings) == 1
    assert "swallows" in result.findings[0].message


def test_r2_accepts_converting_handler():
    result = run("""
        from repro.core.errors import TransientStoreError

        def fetch(store, key):
            try:
                return store[key]
            except Exception as exc:
                raise TransientStoreError(str(exc)) from exc
    """, "R2")
    assert result.findings == []


def test_r2_is_scoped_to_core():
    result = run("""
        def fetch(store, key):
            try:
                return store[key]
            except Exception:
                return None
    """, "R2", path="src/repro/util/fixture.py")
    assert result.findings == []


def test_r2_flags_untyped_raise_in_worker_task():
    result = run("""
        def _task_decode(state, key):
            raise RuntimeError("boom")
    """, "R2")
    assert len(result.findings) == 1
    assert "RuntimeError" in result.findings[0].message


def test_r2_accepts_taxonomy_raise_and_locally_converted_raise():
    result = run("""
        from repro.core.errors import (
            SegmentCorruptionError,
            WorkerStateError,
        )

        def _task_decode(state, key):
            if key not in state:
                raise WorkerStateError("no session")
            try:
                value = state[key]
                if not isinstance(value, dict):
                    raise ValueError("not an object")
            except ValueError as exc:
                raise SegmentCorruptionError(str(exc)) from exc
            return value
    """, "R2")
    assert result.findings == []


# -- R3 pickle-boundary ----------------------------------------------------


def test_r3_flags_lambda_and_nested_function_args():
    result = run("""
        def fan_out(backend, jobs):
            def decode(job):
                return job * 2
            a = backend.map_jobs(decode, jobs)
            b = backend.map_calls(lambda j: j, jobs)
            return a, b
    """, "R3")
    assert len(result.findings) == 2
    messages = " ".join(f.message for f in result.findings)
    assert "nested function 'decode'" in messages
    assert "lambda" in messages


def test_r3_accepts_module_level_and_bound_callables():
    result = run("""
        def decode(job):
            return job * 2

        class Engine:
            def run(self, backend, jobs):
                a = backend.map_jobs(decode, jobs)
                b = backend.submit(self.step, jobs)
                return a, b

            def step(self, job):
                return job
    """, "R3")
    assert result.findings == []


# -- pipelined-retrieval runtime fixtures (R1 + R3) -------------------------
#
# The pipeline window shares state between the fetch pool and the caller
# thread, so `pipeline/retrieval.py` is exactly the shape R1 and R3
# exist for. These fixtures model its hazards; the final test holds the
# real module to both rules with an empty baseline.

PIPELINE_PATH = "src/repro/pipeline/retrieval_fixture.py"


def test_r1_flags_pipeline_pool_handle_touched_unguarded():
    result = run("""
        import threading

        class Window:
            def __init__(self):
                self._lock = threading.Lock()
                self._pool = None

            def executor(self):
                with self._lock:
                    if self._pool is None:
                        self._pool = object()
                    return self._pool

            def close(self):
                self._pool = None  # races a fetch thread in executor()
    """, "R1", path=PIPELINE_PATH)
    assert len(result.findings) == 1
    assert "_pool" in result.findings[0].message


def test_r1_accepts_pipeline_pool_handle_guarded_everywhere():
    result = run("""
        import threading

        class Window:
            def __init__(self):
                self._lock = threading.Lock()
                self._pool = None

            def executor(self):
                with self._lock:
                    if self._pool is None:
                        self._pool = object()
                    return self._pool

            def close(self):
                with self._lock:
                    pool, self._pool = self._pool, None
                return pool
    """, "R1", path=PIPELINE_PATH)
    assert result.findings == []


def test_r3_flags_closure_submitted_to_fetch_pool():
    result = run("""
        class Window:
            def run(self, pool, reconstructor, jobs):
                def chain():
                    for job in jobs:
                        reconstructor.fetch_level_groups(job[0], job[2])
                return pool.submit(chain)
    """, "R3", path=PIPELINE_PATH)
    assert len(result.findings) == 1
    assert "chain" in result.findings[0].message


def test_r3_accepts_module_chain_function_and_partial():
    result = run("""
        import functools

        def _fetch_chain(reconstructor, jobs, ready):
            for job in jobs:
                reconstructor.fetch_level_groups(job[0], job[2])
                ready.put(job[0])

        class Window:
            def run(self, pool, reconstructor, jobs, ready):
                fetch = functools.partial(self.fetch_tile, jobs)
                pool.submit(_fetch_chain, reconstructor, jobs, ready)
                return pool.submit(fetch, 0)

            def fetch_tile(self, jobs, index):
                return jobs[index]
    """, "R3", path=PIPELINE_PATH)
    assert result.findings == []


def test_real_pipeline_retrieval_module_is_r1_r3_clean():
    source = (REPO_ROOT / "src/repro/pipeline/retrieval.py").read_text()
    rules = [all_rules()["R1"], all_rules()["R3"]]
    result = lint_source(source, "src/repro/pipeline/retrieval.py",
                         rules=rules)
    assert result.findings == []
    assert result.suppressed == []  # clean outright, not via pragmas


# -- R4 determinism --------------------------------------------------------


def test_r4_flags_unseeded_rng_and_wall_clock():
    result = run("""
        import random
        import time
        import numpy as np

        def schedule():
            rng = random.Random()
            jitter = random.random()
            gen = np.random.default_rng()
            return rng, jitter, gen, time.time()
    """, "R4", path="src/repro/core/faults.py")
    assert {f.line for f in result.findings} == {7, 8, 9, 10}


def test_r4_accepts_seeded_rng_and_monotonic_clock():
    result = run("""
        import random
        import time
        import numpy as np

        def schedule(seed):
            rng = random.Random(f"{seed}:fetch:0")
            gen = np.random.default_rng(seed)
            return rng, gen, time.monotonic()
    """, "R4", path="src/repro/core/faults.py")
    assert result.findings == []


def test_r4_is_scoped_to_codec_chaos_decode_modules():
    result = run("""
        import random

        def sample():
            return random.random()
    """, "R4", path="src/repro/core/backends.py")
    assert result.findings == []


# -- R5 api-validation -----------------------------------------------------


def test_r5_flags_inline_tolerance_checks():
    result = run("""
        import math

        def plan(field, tolerance):
            tol = float(tolerance)
            if not math.isfinite(tol):
                raise ValueError("bad")
            return tol
    """, "R5", path="src/repro/core/planner.py")
    assert len(result.findings) == 1
    assert "check_tolerance" in result.findings[0].message


def test_r5_accepts_validator_call_and_delegation():
    result = run("""
        from repro.util.validation import check_tolerance

        def plan(field, tolerance):
            tolerance = check_tolerance(tolerance)
            return tolerance

        def retrieve(field, tolerance):
            return plan(field, tolerance)
    """, "R5", path="src/repro/core/planner.py")
    assert result.findings == []


def test_r5_ignores_private_helpers():
    result = run("""
        def _plan(field, tolerance):
            return float(tolerance)
    """, "R5", path="src/repro/core/planner.py")
    assert result.findings == []


# -- pragma suppression ----------------------------------------------------


PRAGMA_VIOLATION = """
    def fetch(store, key):
        try:
            return store[key]
        except Exception:{pragma}
            return None
"""


def test_pragma_on_flagged_line_suppresses():
    src = PRAGMA_VIOLATION.format(
        pragma="  # reprolint: disable=R2 -- probe, result unused"
    )
    result = run(src, "R2")
    assert result.findings == []
    assert len(result.suppressed) == 1


def test_pragma_on_preceding_comment_line_suppresses():
    result = run("""
        def fetch(store, key):
            try:
                return store[key]
            # reprolint: disable=R2 -- probe, result unused
            except Exception:
                return None
    """, "R2")
    assert result.findings == []
    assert len(result.suppressed) == 1


def test_pragma_on_def_line_suppresses_whole_function():
    result = run("""
        def fetch(store, key):  # reprolint: disable=R2 -- best-effort probe
            try:
                one = store[key]
            except Exception:
                one = None
            try:
                two = store[key]
            except Exception:
                two = None
            return one, two
    """, "R2")
    assert result.findings == []
    assert len(result.suppressed) == 2


def test_pragma_for_other_rule_does_not_suppress():
    src = PRAGMA_VIOLATION.format(pragma="  # reprolint: disable=R4")
    result = run(src, "R2")
    assert len(result.findings) == 1


def test_bare_disable_pragma_suppresses_every_rule():
    src = PRAGMA_VIOLATION.format(pragma="  # reprolint: disable")
    result = run(src, "R2")
    assert result.findings == []


# -- baseline round-trip ---------------------------------------------------


def _violation_findings(extra_lines: int = 0):
    src = ("\n" * extra_lines) + textwrap.dedent("""
        def fetch(store, key):
            try:
                return store[key]
            except Exception:
                return None
    """)
    return lint_source(src, CORE_PATH, rules=[all_rules()["R2"]]).findings


def test_baseline_round_trip_and_line_shift_stability(tmp_path):
    findings = _violation_findings()
    path = tmp_path / "baseline.json"
    baseline_mod.save(path, findings)
    known = baseline_mod.load(path)
    assert known == set(fingerprints(findings))

    # The same violation shifted 7 lines down still matches.
    shifted = _violation_findings(extra_lines=7)
    assert shifted[0].line != findings[0].line
    split = baseline_mod.apply(shifted, known)
    assert split.new == []
    assert split.baselined == shifted
    assert split.stale == []


def test_baseline_separates_new_findings_and_stale_entries(tmp_path):
    path = tmp_path / "baseline.json"
    baseline_mod.save(path, _violation_findings())
    known = baseline_mod.load(path)
    split = baseline_mod.apply([], known)
    assert split.new == []
    assert len(split.stale) == 1

    fresh = _violation_findings()
    split = baseline_mod.apply(fresh, set())
    assert split.new == fresh


def test_malformed_baseline_is_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 99}')
    with pytest.raises(baseline_mod.BaselineError):
        baseline_mod.load(path)


# -- CLI exit-code semantics ----------------------------------------------


def _write_violation(tmp_path) -> Path:
    target = tmp_path / "sample.py"
    target.write_text(textwrap.dedent("""
        def fan_out(backend, jobs):
            return backend.map_jobs(lambda j: j, jobs)
    """))
    return target


def test_cli_exit_codes(tmp_path, capsys):
    dirty = _write_violation(tmp_path)
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")

    assert reprolint_main([str(clean), "--baseline", "none"]) == 0
    assert reprolint_main([str(dirty), "--baseline", "none"]) == 1
    assert reprolint_main([str(tmp_path / "missing.py")]) == 2
    assert reprolint_main(["--rules", "R9", str(clean)]) == 2
    capsys.readouterr()


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    dirty = _write_violation(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert reprolint_main(
        [str(dirty), "--baseline", str(baseline), "--update-baseline"]
    ) == 0
    assert reprolint_main([str(dirty), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_cli_json_output(tmp_path, capsys):
    import json

    dirty = _write_violation(tmp_path)
    assert reprolint_main([str(dirty), "--baseline", "none", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["new"] == 1
    assert payload["findings"][0]["rule"] == "R3"


def test_cli_reports_syntax_errors(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    assert reprolint_main([str(bad), "--baseline", "none"]) == 1
    assert "syntax error" in capsys.readouterr().out


# -- the real tree is clean (the tier-1 lint gate) -------------------------


def test_src_repro_is_reprolint_clean():
    result = lint_paths(["src/repro"], REPO_ROOT)
    known = baseline_mod.load(baseline_mod.DEFAULT_BASELINE)
    split = baseline_mod.apply(result.findings, known)
    assert result.errors == []
    assert split.new == [], "\n".join(
        f"{f.location()}: {f.rule}: {f.message}" for f in split.new
    )
    # The core tree must be clean even of baselined findings.
    core = [f for f in split.baselined if f.path.startswith("src/repro/core")]
    assert core == []
