"""Cross-module integration scenarios and failure injection.

These tie together subsystems the unit suites exercise in isolation:
tiled refactoring driven through the pipelined executor, QoI retrieval
over a file-backed store, corruption detection on every stream layer,
and the portability guarantee across simulated devices.
"""

import numpy as np
import pytest

from repro.core import Reconstructor
from repro.core.refactor import RefactorConfig, refactor
from repro.core.reconstruct import reconstruct
from repro.core.stream import RefactoredField
from repro.core.store import DirectoryStore, MemoryStore, load_field, store_field
from repro.core.tiling import TiledReconstructor, TiledRefactorer
from repro.data import generators as gen
from repro.gpu.device import H100, MI250X
from repro.gpu.events import Task
from repro.gpu.hdem import HostDeviceModel
from repro.pipeline.executor import PipelinedExecutor
from repro.qoi import retrieve_qoi, v_total


@pytest.fixture(scope="module")
def field_data():
    return gen.gaussian_random_field((16, 18, 20), -2.5, seed=31,
                                     dtype=np.float64)


class TestExecutorDrivenTiling:
    def test_pipeline_executes_real_tile_refactoring(self, field_data):
        """Fig. 4's DAG drives the *actual* per-tile refactoring work;
        results are real, timing is modeled and validated."""
        refac = TiledRefactorer((10, 18, 20))
        tiles_data = [field_data[:10], field_data[10:]]
        model = HostDeviceModel(H100)
        tasks = []
        actions = {}
        results = {}
        for i, block in enumerate(tiles_data):
            tasks.append(Task(f"I{i}", "h2d", 1e-3))
            tasks.append(Task(f"D{i}", "compute", 2e-3, (f"I{i}",)))
            tasks.append(Task(f"O{i}", "d2h", 1e-3, (f"D{i}",)))

            def do(i=i, block=block):
                results[i] = refac._refactorer_for(block.shape).refactor(
                    np.ascontiguousarray(block), name=f"t{i}")
                return i

            actions[f"D{i}"] = do
        timeline, _ = PipelinedExecutor(model).execute(tasks, actions)
        timeline.validate(tasks)
        assert set(results) == {0, 1}
        for i, block in enumerate(tiles_data):
            rec = reconstruct(results[i], tolerance=1e-4)
            assert np.max(np.abs(rec.data - block)) <= 1e-4


class TestQoIOverStore:
    def test_qoi_retrieval_from_directory_store(self, field_data, tmp_path):
        dims = (12, 12, 12)
        vx, vy, vz = gen.turbulence_velocity(dims, seed=5,
                                             dtype=np.float64)
        original = {"vx": vx, "vy": vy, "vz": vz}
        store = DirectoryStore(tmp_path / "qoi")
        for name, arr in original.items():
            store_field(store, refactor(arr, name=name))
        loaded = {name: load_field(store, name) for name in original}
        result = retrieve_qoi(loaded, v_total(), 1e-2, method="mape")
        assert result.estimated_error <= 1e-2
        truth = v_total().evaluate(original)
        assert np.max(np.abs(result.qoi_values - truth)) <= 1e-2


class TestPortabilityAcrossDevices:
    @pytest.mark.parametrize("writer,reader", [(H100, MI250X),
                                               (MI250X, H100)])
    def test_stream_decodes_identically(self, field_data, writer, reader):
        """The paper's portability property: a stream refactored with
        one device's warp width reconstructs bit-identically anywhere."""
        f_writer = refactor(
            field_data,
            RefactorConfig(warp_size=writer.warp_size),
        )
        blob = f_writer.to_bytes()
        # "Transfer" to the other system and decode there.
        f_reader = RefactoredField.from_bytes(blob)
        r1 = reconstruct(f_writer, tolerance=1e-3)
        r2 = reconstruct(f_reader, tolerance=1e-3)
        np.testing.assert_array_equal(r1.data, r2.data)


class TestFailureInjection:
    def test_corrupt_group_payload_detected(self, field_data):
        field = refactor(field_data)
        lv = field.levels[0]
        g = lv.groups[0]
        corrupted = bytearray(g.payload)
        if len(corrupted) > 16:
            corrupted[8] ^= 0xFF
        g.payload = bytes(corrupted[:-4])  # truncate + flip
        with pytest.raises(ValueError):
            Reconstructor(field).reconstruct(tolerance=1e-6)

    def test_corrupt_field_blob_detected(self, field_data):
        blob = bytearray(refactor(field_data).to_bytes())
        blob[4] = 99  # version byte
        with pytest.raises(ValueError):
            RefactoredField.from_bytes(bytes(blob))

    def test_store_missing_segment(self, field_data):
        store = MemoryStore()
        field = refactor(field_data, name="v")
        store_field(store, field)
        victim = next(k for k in store.keys() if ".L0.G0" in k)
        del store._blobs[victim]
        with pytest.raises(KeyError):
            load_field(store, "v")

    def test_wrong_shape_plan_rejected(self, field_data):
        field = refactor(field_data)
        other = refactor(gen.gaussian_random_field((8, 8, 8), seed=1,
                                                   dtype=np.float64))
        from repro.core.planner import plan_greedy

        plan = plan_greedy(other, 1e-3)
        with pytest.raises((ValueError, IndexError)):
            Reconstructor(field).reconstruct(plan=plan)


class TestMixedPrecisionWorkflow:
    def test_float32_stream_reconstructs_to_float32(self):
        data = gen.gaussian_random_field((12, 12, 12), seed=2,
                                         dtype=np.float32)
        r = reconstruct(refactor(data), tolerance=1e-3)
        assert r.data.dtype == np.float32

    def test_tiled_negabinary_store_roundtrip(self, tmp_path):
        """Deepest stack: tiling + negabinary + file store."""
        data = gen.gaussian_random_field((14, 14, 14), seed=3,
                                         dtype=np.float64)
        tiled = TiledRefactorer(
            (8, 8, 8), RefactorConfig(signed_encoding="negabinary")
        ).refactor(data, name="w")
        store = DirectoryStore(tmp_path / "tiles")
        for f in tiled.fields:
            store_field(store, f)
        loaded_fields = [load_field(store, f.name) for f in tiled.fields]
        tiled.fields = loaded_fields
        out, bound = TiledReconstructor(tiled).reconstruct(tolerance=1e-4)
        assert bound <= 1e-4
        assert np.max(np.abs(out - data)) <= 1e-4
