"""Unit tests for the pickle-free stream serialization."""

import numpy as np
import pytest

from repro.util import serialize


class TestHeader:
    def test_roundtrip(self):
        buf = serialize.write_header(3, [10, 0, 7])
        lengths, offset = serialize.read_header(buf)
        assert lengths == [10, 0, 7]
        assert offset == len(buf)

    def test_count_mismatch(self):
        with pytest.raises(ValueError):
            serialize.write_header(2, [1])

    def test_bad_magic(self):
        buf = b"XXXX" + serialize.write_header(0, [])[4:]
        with pytest.raises(ValueError, match="magic"):
            serialize.read_header(buf)

    def test_truncated(self):
        buf = serialize.write_header(2, [5, 5])
        with pytest.raises(ValueError):
            serialize.read_header(buf[:6])


class TestPackArrays:
    def test_roundtrip_bytes(self):
        arrays = [
            np.arange(10, dtype=np.uint8),
            np.arange(5, dtype=np.float64),
            np.zeros(0, dtype=np.uint32),
        ]
        blob = serialize.pack_arrays(arrays)
        payloads = serialize.unpack_arrays(blob)
        assert len(payloads) == 3
        assert payloads[0] == arrays[0].tobytes()
        assert payloads[1] == arrays[1].tobytes()
        assert payloads[2] == b""

    def test_truncated_payload_raises(self):
        blob = serialize.pack_arrays([np.arange(100, dtype=np.uint8)])
        with pytest.raises(ValueError, match="truncated"):
            serialize.unpack_arrays(blob[:-1])

    def test_noncontiguous_input(self):
        arr = np.arange(20, dtype=np.int32)[::2]
        blob = serialize.pack_arrays([arr])
        (payload,) = serialize.unpack_arrays(blob)
        assert np.frombuffer(payload, dtype=np.int32).tolist() == arr.tolist()
