"""Tests for the register-shuffle warp emulation (Section 4.2)."""

import numpy as np
import pytest

from repro.bitplane.encoding import SHUFFLE_VARIANTS
from repro.bitplane.register_shuffle import (
    encode_warp_planes,
    instruction_counts,
    warp_ballot,
    warp_match_any,
    warp_reduce_add,
    warp_shift_reduce,
)


class TestWarpPrimitives:
    def test_ballot_known_pattern(self):
        bits = np.array([1, 0, 1, 1], dtype=np.uint64)
        assert warp_ballot(bits) == 0b1101

    def test_all_variants_agree_random(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            w = int(rng.integers(1, 65))
            bits = rng.integers(0, 2, w).astype(np.uint64)
            expected = warp_ballot(bits)
            assert warp_shift_reduce(bits) == expected
            assert warp_match_any(bits) == expected
            assert warp_reduce_add(bits) == expected

    def test_match_any_flip_path(self):
        # Storing lane (lane 0) holds a zero predicate -> flip needed.
        bits = np.array([0, 1, 1, 0], dtype=np.uint64)
        assert warp_match_any(bits) == 0b0110

    def test_all_zeros_and_ones(self):
        zeros = np.zeros(32, dtype=np.uint64)
        ones = np.ones(32, dtype=np.uint64)
        for f in (warp_ballot, warp_shift_reduce, warp_match_any,
                  warp_reduce_add):
            assert f(zeros) == 0
            assert f(ones) == (1 << 32) - 1

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            warp_ballot(np.array([2], dtype=np.uint64))

    def test_rejects_oversized_warp(self):
        with pytest.raises(ValueError):
            warp_ballot(np.zeros(65, dtype=np.uint64))


class TestWarpEncoding:
    @pytest.mark.parametrize("variant", SHUFFLE_VARIANTS)
    def test_words_match_manual_extraction(self, variant):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 1 << 16, 32).astype(np.uint64)
        words = encode_warp_planes(values, 16, variant=variant)
        for i, word in enumerate(words):
            b = 16 - 1 - i
            expected = 0
            for lane in range(32):
                expected |= int((values[lane] >> b) & 1) << lane
            assert word == expected

    def test_variants_produce_identical_planes(self):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 1 << 20, 32).astype(np.uint64)
        results = [
            encode_warp_planes(values, 20, variant=v)
            for v in SHUFFLE_VARIANTS
        ]
        for other in results[1:]:
            assert other == results[0]

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            encode_warp_planes(np.zeros(4, np.uint64), 4, variant="teleport")


class TestInstructionCounts:
    def test_ballot_fewest_comm_ops(self):
        counts = {v: instruction_counts(v) for v in SHUFFLE_VARIANTS}
        assert counts["ballot"]["comm_ops"] <= counts["shift"]["comm_ops"]

    def test_shift_scales_with_warp(self):
        assert (instruction_counts("shift", 64)["comm_ops"]
                > instruction_counts("shift", 16)["comm_ops"])

    def test_reduce_add_flags_hardware(self):
        assert "needs_reduce_unit" in instruction_counts("reduce_add")

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            instruction_counts("warpspeed")
