"""Cross-backend differential suite: serial / threads / processes.

The execution backend must be *unobservable* except in wall-clock time:
every engine (eager refactor, incremental and full-decode staircases,
tiled region-of-interest retrieval, degraded-mode resume, service
sessions) must produce bit-identical bytes, identical error bounds,
identical ``IOCounters``/``DecodeCounters``, and identical
degraded/failed-tile reporting under all three backends. Each test
computes its reference on the serial engine and diffs a parametrized
backend against it, so a future backend (or a regression in an existing
one) fails loudly here rather than corrupting science silently.

Also covers the backend-selection rules, hypothesis properties of
``map_jobs`` (ordering, exception propagation, lifecycle), the nested
re-entrant submission fix, and ``atexit`` teardown of leaked pools.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core._pool import WorkerPoolMixin
from repro.core.backends import (
    BACKEND_ENV,
    ProcessBackend,
    current_process_backend,
    default_process_workers,
    parse_backend_spec,
    resolve_backend,
    shared_process_backend,
    task_name,
    worker_shared,
)
from repro.core.errors import (
    TransientStoreError,
    WorkerCrashedError,
    WorkerTimeoutError,
)
from repro.core.faults import FaultInjectingStore, WorkerChaos
from repro.core.refactor import RefactorConfig, refactor
from repro.core.reconstruct import Reconstructor
from repro.core.service import RetrievalService
from repro.core.store import (
    MemoryStore,
    open_field,
    open_tiled_field,
    segment_key,
    store_field,
    store_tiled_field,
)
from repro.core.tiling import TiledReconstructor, TiledRefactorer
from repro.data import generators as gen

BACKENDS = ["serial", "threads:2", "processes:2"]
STAIRCASE = [1e-1, 3e-2, 1e-2, 3e-3, 1e-3]
ROI = (slice(4, 14), slice(2, 12), None)
SRC = Path(__file__).resolve().parent.parent / "src"

pytestmark = pytest.mark.backend


# -- shared task/job functions (module-level: process-backend picklable) ---

def _square(x):
    return x * x


def _explode_on_negative(x):
    if x < 0:
        raise ValueError(f"negative job {x}")
    return x


def _raise_transient(x):
    raise TransientStoreError(f"synthetic fault {x}")


def _resolved_kind_with_forced_parallel(_):
    # Inside a process worker the guard must force serial regardless of
    # what num_workers asks for — nested pools are forbidden.
    return resolve_backend(None, 8).kind


class _Host(WorkerPoolMixin):
    """Minimal pool host for backend/property tests."""

    def __init__(self, num_workers: int = 0, backend: str | None = None):
        self.num_workers = int(num_workers)
        self.backend = backend

    def _pool_size(self) -> int:
        return self.num_workers


# -- fixtures ---------------------------------------------------------------

@pytest.fixture(scope="module")
def data():
    return gen.gaussian_random_field((18, 14, 10), -2.0, seed=21,
                                     dtype=np.float64)


@pytest.fixture(scope="module")
def reference_field(data):
    return refactor(data, name="vx")


@pytest.fixture(scope="module")
def reference_staircase(reference_field):
    recon = Reconstructor(reference_field)
    return [recon.reconstruct(tolerance=t) for t in STAIRCASE]


@pytest.fixture(scope="module")
def reference_tiled(data):
    return TiledRefactorer((8, 8, 8)).refactor(data, name="rho")


@pytest.fixture(scope="module")
def stored(reference_field):
    store = MemoryStore()
    store_field(store, reference_field)
    return store


@pytest.fixture(scope="module")
def tiled_stored(reference_tiled):
    store = MemoryStore()
    store_tiled_field(store, reference_tiled)
    return store


def _fresh_tiled_store(reference_tiled):
    store = MemoryStore()
    store_tiled_field(store, reference_tiled)
    return store


# -- backend selection rules ------------------------------------------------

class TestBackendSelection:
    def test_parse_specs(self):
        assert parse_backend_spec("serial") == ("serial", None)
        assert parse_backend_spec("Threads:4") == ("threads", 4)
        assert parse_backend_spec("processes:2") == ("processes", 2)

    @pytest.mark.parametrize("junk", ["gpu", "threads:x", "processes:0"])
    def test_parse_rejects_junk(self, junk):
        with pytest.raises(ValueError):
            parse_backend_spec(junk)

    def test_num_workers_rule(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None, 0) == ("serial", 0)
        assert resolve_backend(None, 1) == ("serial", 0)
        assert resolve_backend(None, 4) == ("threads", 4)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "processes:3")
        assert resolve_backend(None, 0) == ("processes", 3)
        # the historical num_workers sizing survives an unsized override
        monkeypatch.setenv(BACKEND_ENV, "processes")
        assert resolve_backend(None, 4) == ("processes", 4)

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "processes:3")
        assert resolve_backend("threads:2", 0) == ("threads", 2)
        assert resolve_backend("serial", 8) == ("serial", 0)

    def test_forced_parallel_kind_gets_default_width(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        spec = resolve_backend("processes", 0)
        assert spec.kind == "processes"
        assert spec.workers == default_process_workers()

    def test_worker_processes_resolve_serial(self):
        host = _Host(2, backend="processes:2")
        kinds = host.map_jobs(_resolved_kind_with_forced_parallel, [0, 1])
        assert kinds == ["serial", "serial"]

    def test_invalid_backend_rejected_at_construction(self, reference_field):
        with pytest.raises(ValueError):
            RefactorConfig(backend="gpu")
        with pytest.raises(ValueError):
            Reconstructor(reference_field, backend="threads:zero")
        with pytest.raises(ValueError):
            TiledRefactorer((8, 8, 8), backend="processes:-1")


# -- differential: refactor -------------------------------------------------

class TestRefactorDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_refactor_byte_identical(self, data, reference_field, backend):
        config = RefactorConfig(num_workers=2, backend=backend)
        field = refactor(data, config, name="vx")
        assert field.to_bytes() == reference_field.to_bytes()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_tiled_refactor_byte_identical(self, data, reference_tiled,
                                           backend):
        tiled = TiledRefactorer(
            (8, 8, 8), num_workers=2, backend=backend
        ).refactor(data, name="rho")
        assert len(tiled.fields) == len(reference_tiled.fields)
        for built, ref in zip(tiled.fields, reference_tiled.fields):
            assert built.to_bytes() == ref.to_bytes()
        assert tiled.value_range == reference_tiled.value_range


# -- differential: reconstruction ------------------------------------------

def _assert_steps_identical(result, reference):
    np.testing.assert_array_equal(result.data, reference.data)
    assert result.error_bound == reference.error_bound
    assert result.decoded_groups == reference.decoded_groups
    assert result.decoded_planes == reference.decoded_planes
    assert result.degraded == reference.degraded
    assert result.failed_groups == reference.failed_groups


class TestReconstructDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_eager_staircase(self, reference_field, reference_staircase,
                             backend):
        recon = Reconstructor(reference_field, num_workers=2,
                              backend=backend)
        for tol, ref in zip(STAIRCASE, reference_staircase):
            _assert_steps_identical(recon.reconstruct(tolerance=tol), ref)
        ref_session = Reconstructor(reference_field)
        for tol in STAIRCASE:
            ref_session.reconstruct(tolerance=tol)
        assert recon.fetched_groups == ref_session.fetched_groups
        assert recon.decode_counters == ref_session.decode_counters
        assert recon.decode_state_bytes() == ref_session.decode_state_bytes()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_full_decode_engine(self, reference_field, reference_staircase,
                                backend):
        recon = Reconstructor(reference_field, num_workers=2,
                              incremental=False, backend=backend)
        for tol, ref in zip(STAIRCASE, reference_staircase):
            step = recon.reconstruct(tolerance=tol)
            np.testing.assert_array_equal(step.data, ref.data)
            assert step.error_bound == ref.error_bound

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_lazy_staircase_with_io_counters(self, stored,
                                             reference_staircase, backend):
        ref_recon = Reconstructor(open_field(stored, "vx"))
        recon = Reconstructor(open_field(stored, "vx"), num_workers=2,
                              backend=backend)
        for tol, ref in zip(STAIRCASE, reference_staircase):
            expected = ref_recon.reconstruct(tolerance=tol)
            step = recon.reconstruct(tolerance=tol)
            np.testing.assert_array_equal(step.data, ref.data)
            assert step.incremental_bytes == expected.incremental_bytes
            assert step.cold_bytes == expected.cold_bytes
            assert step.cache_hit_bytes == expected.cache_hit_bytes
        # lazy fetch stays parent-side under every backend, so the
        # session-cumulative segment traffic matches exactly
        assert (recon.field.io_counters.snapshot()
                == ref_recon.field.io_counters.snapshot())


class TestTiledDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_roi_staircase_with_aggregates(self, reference_tiled,
                                           tiled_stored, backend):
        ref = TiledReconstructor(open_tiled_field(tiled_stored, "rho"))
        got = TiledReconstructor(
            open_tiled_field(_fresh_tiled_store_from(tiled_stored), "rho"),
            num_workers=2, backend=backend,
        )
        for tol in STAIRCASE:
            expected = ref.reconstruct(tolerance=tol, region=ROI)
            step = got.reconstruct(tolerance=tol, region=ROI)
            np.testing.assert_array_equal(step.data, expected.data)
            assert step.error_bound == expected.error_bound
            assert step.degraded == expected.degraded
            assert step.failed_tiles == expected.failed_tiles
        assert got.touched_tiles == ref.touched_tiles
        assert got.fetched_bytes == ref.fetched_bytes
        assert got.decode_state_bytes() == ref.decode_state_bytes()
        assert (got.aggregate_decode_counters()
                == ref.aggregate_decode_counters())
        assert (got.aggregate_io_counters().snapshot()
                == ref.aggregate_io_counters().snapshot())
        got.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_widening_region_pays_only_new_tiles(self, tiled_stored,
                                                 backend):
        ref = TiledReconstructor(open_tiled_field(tiled_stored, "rho"))
        got = TiledReconstructor(
            open_tiled_field(_fresh_tiled_store_from(tiled_stored), "rho"),
            num_workers=2, backend=backend,
        )
        for region in (ROI, None):  # widen ROI -> full domain
            expected = ref.reconstruct(tolerance=1e-2, region=region)
            step = got.reconstruct(tolerance=1e-2, region=region)
            np.testing.assert_array_equal(step.data, expected.data)
        assert got.fetched_bytes == ref.fetched_bytes
        assert got.touched_tiles == ref.touched_tiles
        got.close()


def _fresh_tiled_store_from(stored: MemoryStore) -> MemoryStore:
    """Copy a stored tiled field into a fresh store (fresh counters)."""
    copy = MemoryStore()
    for key in stored.keys():
        copy.put(key, stored.get(key))
    return copy


# -- differential: degraded-mode resume ------------------------------------

class TestDegradedResumeDifferential:
    """Pre-programmed fault schedules replay identically everywhere.

    ``fail_first`` schedules are pure functions of per-key access
    counts, which the process backend preserves: untiled fetches stay
    parent-side, and tiled fetches are pinned to one worker per tile.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_untiled_degrade_then_resume(self, stored, reference_staircase,
                                         backend):
        key = segment_key("vx", 0, 2)

        def build(backend_spec):
            flaky = FaultInjectingStore(stored, fail_first={key: 1})
            return Reconstructor(open_field(flaky, "vx"), num_workers=2,
                                 backend=backend_spec)

        ref, got = build(None), build(backend)
        saw_degraded = False
        for tol in STAIRCASE:
            expected = ref.reconstruct(tolerance=tol, on_fault="degrade")
            step = got.reconstruct(tolerance=tol, on_fault="degrade")
            np.testing.assert_array_equal(step.data, expected.data)
            assert step.error_bound == expected.error_bound
            assert step.degraded == expected.degraded
            assert step.failed_groups == expected.failed_groups
            saw_degraded = saw_degraded or step.degraded
        # the schedule must actually have degraded one step, and the
        # final refinement must still land on the clean reference
        assert saw_degraded
        np.testing.assert_array_equal(
            got.reconstruct(tolerance=STAIRCASE[-1]).data,
            reference_staircase[-1].data,
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_tiled_unopened_and_midstep_degrade(self, reference_tiled,
                                                backend):
        # fail the first access of one tile's index (never-opened
        # degrade: zeros + inf bound) and of another tile's first
        # segment (mid-step degrade from committed state)
        schedule = {
            "rho.T0_0_0.index": 1,
            segment_key("rho.T0_1_0", 0, 0): 1,
        }

        def build(backend_spec):
            store = _fresh_tiled_store(reference_tiled)
            flaky = FaultInjectingStore(store, fail_first=schedule)
            return TiledReconstructor(open_tiled_field(flaky, "rho"),
                                      num_workers=2, backend=backend_spec)

        ref, got = build(None), build(backend)
        saw_degraded = False
        for tol in STAIRCASE[:3]:
            expected = ref.reconstruct(tolerance=tol, region=ROI,
                                       on_fault="degrade")
            step = got.reconstruct(tolerance=tol, region=ROI,
                                   on_fault="degrade")
            np.testing.assert_array_equal(step.data, expected.data)
            assert step.error_bound == expected.error_bound
            assert step.degraded == expected.degraded
            assert step.failed_tiles == expected.failed_tiles
            assert step.failed_groups == expected.failed_groups
            saw_degraded = saw_degraded or step.degraded
        assert saw_degraded  # the schedule must not be vacuous
        got.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_raise_mode_propagates_typed_error(self, reference_tiled,
                                               backend):
        store = _fresh_tiled_store(reference_tiled)
        flaky = FaultInjectingStore(
            store, fail_first={"rho.T0_0_0.index": 1}
        )
        recon = TiledReconstructor(open_tiled_field(flaky, "rho"),
                                   num_workers=2, backend=backend)
        with pytest.raises(TransientStoreError):
            recon.reconstruct(tolerance=1e-2, region=ROI)
        recon.close()


# -- differential: service sessions ----------------------------------------

class TestServiceDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_session_staircase(self, stored, reference_staircase, backend):
        service = RetrievalService(stored, prefetch=True)
        ref_service = RetrievalService(stored, prefetch=True)
        with service.session("vx", num_workers=2, backend=backend) as got, \
                ref_service.session("vx") as ref:
            for tol, clean in zip(STAIRCASE, reference_staircase):
                expected = ref.reconstruct(tolerance=tol)
                ref_service.drain_prefetch()
                step = got.reconstruct(tolerance=tol)
                service.drain_prefetch()
                np.testing.assert_array_equal(step.data, clean.data)
                np.testing.assert_array_equal(step.data, expected.data)
                assert step.cold_bytes == expected.cold_bytes
                assert step.cache_hit_bytes == expected.cache_hit_bytes
            assert got.stats() == ref.stats()
        service.close()
        ref_service.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_tiled_session_roi_staircase(self, tiled_stored, backend):
        service = RetrievalService(tiled_stored)
        ref_service = RetrievalService(tiled_stored)
        with service.tiled_session(
            "rho", num_workers=2, backend=backend
        ) as got, ref_service.tiled_session("rho") as ref:
            for tol in STAIRCASE:
                expected = ref.reconstruct(tolerance=tol, region=ROI)
                step = got.reconstruct(tolerance=tol, region=ROI)
                np.testing.assert_array_equal(step.data, expected.data)
                assert step.error_bound == expected.error_bound
            assert got.tiles_touched == ref.tiles_touched
            assert got.fetched_bytes == ref.fetched_bytes
            assert got.decode_state_bytes == ref.decode_state_bytes
            got_stats, ref_stats = got.stats(), ref.stats()
            # process workers read the store directly (no shared cache),
            # so the cold/hit *split* may differ; the reads must not
            for key in ("tiles", "tiles_touched", "fetched_bytes",
                        "decode_state_bytes", "segment_reads"):
                assert got_stats[key] == ref_stats[key]
        service.close()
        ref_service.close()


# -- map_jobs properties ----------------------------------------------------

class TestMapJobsProperties:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(jobs=st.lists(st.integers(-1000, 1000), max_size=25))
    @settings(max_examples=15, deadline=None)
    def test_ordering_matches_serial_loop(self, backend, jobs):
        host = _Host(2, backend=backend)
        try:
            assert host.map_jobs(_square, jobs) == [x * x for x in jobs]
        finally:
            host.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(
        prefix=st.lists(st.integers(0, 100), max_size=10),
        bad=st.integers(-100, -1),
        suffix=st.lists(st.integers(-100, 100), max_size=10),
    )
    @settings(max_examples=15, deadline=None)
    def test_exception_propagates_with_args_intact(self, backend, prefix,
                                                   bad, suffix):
        host = _Host(2, backend=backend)
        jobs = prefix + [bad] + suffix
        first_bad = next(x for x in jobs if x < 0)
        try:
            with pytest.raises(ValueError) as excinfo:
                host.map_jobs(_explode_on_negative, jobs)
            # every backend surfaces the *earliest submitted* failure
            assert excinfo.value.args == (f"negative job {first_bad}",)
        finally:
            host.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_typed_store_error_crosses_the_boundary(self, backend):
        host = _Host(2, backend=backend)
        try:
            with pytest.raises(TransientStoreError) as excinfo:
                host.map_jobs(_raise_transient, [1, 2])
            assert excinfo.value.args == ("synthetic fault 1",)
            if backend.startswith("processes"):
                assert "TransientStoreError" in excinfo.value.remote_traceback
        finally:
            host.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(jobs=st.lists(st.integers(0, 50), min_size=2, max_size=12))
    @settings(max_examples=10, deadline=None)
    def test_lifecycle_close_then_reuse(self, backend, jobs):
        host = _Host(2, backend=backend)
        try:
            assert host.map_jobs(_square, jobs) == [x * x for x in jobs]
            host.close()  # pool torn down...
            assert host.map_jobs(_square, jobs) == [x * x for x in jobs]
        finally:
            host.close()


class TestProcessBackendLifecycle:
    def test_restart_bumps_generation_and_reships_shared(self):
        backend = ProcessBackend(2)
        try:
            token = "test-shared-object"
            backend.ensure_shared(token, {"answer": 42})
            first = backend.generation
            assert first >= 1
            got = backend.call(task_name(_read_shared), token)
            assert got == {"answer": 42}
            backend.close()
            # restart: generation bumps, shared state must be re-shipped
            backend.ensure_shared(token, {"answer": 43})
            assert backend.ensure_alive() == first + 1
            assert backend.call(task_name(_read_shared), token) == {
                "answer": 43
            }
        finally:
            backend.close()

    def test_shared_backend_grows_but_never_shrinks(self):
        small = shared_process_backend(1)
        assert small.num_workers >= 1
        grown = shared_process_backend(2)  # may replace to widen
        assert grown.num_workers >= 2
        again = shared_process_backend(1)  # a narrower ask never shrinks
        assert again is grown
        assert again.num_workers >= 2

    def test_forked_child_cannot_tear_down_the_shared_pool(self):
        """Spinning up a *private* pool forks children that inherit the
        shared singleton (and its pipe fds); when the child clears the
        singleton global, the resulting GC must not close the parent's
        shared workers. Regression: this exact sequence used to kill
        the shared pool and break every later process-backed engine."""
        host = _Host(2, backend="processes:2")
        assert host.map_jobs(_square, [2, 3]) == [4, 9]  # shared pool up
        private = ProcessBackend(2)
        try:
            private.ensure_alive()
        finally:
            private.close()
        time.sleep(0.5)  # any child-side teardown would have landed
        assert shared_process_backend(1).alive, \
            "a forked child's teardown reached the shared pool"
        assert host.map_jobs(_square, [4]) == [16]


def _read_shared(state, token):
    return worker_shared(state, token)


def _reverse_blob(blob):
    return blob[::-1]


class TestPipeCapacity:
    def test_large_task_and_result_payloads_do_not_deadlock(self):
        """Task and result payloads far beyond the ~64KB OS pipe buffer:
        the old send-everything-then-drain barrier deadlocked (worker
        blocked writing an undrained result, parent blocked writing the
        rest of the batch), so run under a watchdog."""
        backend = ProcessBackend(2)
        blobs = [bytes([65 + i]) * (300 * 1024) for i in range(6)]
        outcome = {}

        def run():
            outcome["result"] = backend.map_jobs(_reverse_blob, blobs)

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        worker.join(timeout=60)
        try:
            assert not worker.is_alive(), \
                "large payloads deadlocked the dispatch barrier"
            assert outcome["result"] == [b[::-1] for b in blobs]
        finally:
            backend.close()

    def test_unpicklable_job_raises_with_rest_of_batch_settled(self):
        """fn is probed for picklability but jobs are not (probing would
        serialize each one twice); a job that cannot pickle surfaces as
        that call's failure without wedging the pipes."""
        backend = ProcessBackend(2)
        try:
            with pytest.raises(TypeError):
                backend.map_jobs(_square, [1, threading.Lock(), 3])
            # the pool stayed consistent: the next batch works
            assert backend.map_jobs(_square, [2, 3]) == [4, 9]
        finally:
            backend.close()


class TestPoolReplacementReship:
    def test_grown_shared_pool_forces_tile_reship(self, reference_tiled,
                                                  tiled_stored):
        """Growing the shared pool mid-session replaces it with a fresh
        ProcessBackend whose generation counter restarts — and can land
        on the same generation number the session recorded on the old
        pool. Re-ship decisions must key on pool identity (uid) too, or
        the fresh workers raise 'tile source not resident'."""
        ref = TiledReconstructor(open_tiled_field(tiled_stored, "rho"))
        got = TiledReconstructor(
            open_tiled_field(_fresh_tiled_store_from(tiled_stored), "rho"),
            num_workers=2, backend="processes:2",
        )
        try:
            expected = ref.reconstruct(tolerance=STAIRCASE[0], region=ROI)
            step = got.reconstruct(tolerance=STAIRCASE[0], region=ROI)
            np.testing.assert_array_equal(step.data, expected.data)
            before = shared_process_backend(1)
            grown = shared_process_backend(before.num_workers + 1)
            assert grown is not before
            assert grown.uid != before.uid
            expected = ref.reconstruct(tolerance=STAIRCASE[1], region=ROI)
            step = got.reconstruct(tolerance=STAIRCASE[1], region=ROI)
            np.testing.assert_array_equal(step.data, expected.data)
            assert step.error_bound == expected.error_bound
        finally:
            got.close()


# -- satellite: nested re-entrant submission --------------------------------

class TestReentrantSubmission:
    def test_nested_map_jobs_completes_instead_of_deadlocking(self):
        """A job running on the host's own saturated pool re-enters
        map_jobs; before the fix this deadlocked (ThreadPoolExecutor
        does not steal work), so run under a watchdog."""
        host = _Host(2, backend="threads:2")
        inner = list(range(6))

        def outer(_):
            return sum(host.map_jobs(_square, inner))

        outcome = {}

        def run():
            outcome["result"] = host.map_jobs(outer, list(range(4)))

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        worker.join(timeout=20)
        try:
            assert not worker.is_alive(), "nested map_jobs deadlocked"
            expected = sum(x * x for x in inner)
            assert outcome["result"] == [expected] * 4
        finally:
            host.close()


# -- satellite: atexit teardown of leaked pools -----------------------------

class TestAtexitSafety:
    def test_leaked_pools_do_not_hang_interpreter_exit(self):
        """A process that uses both backends and exits without closing
        anything must still terminate promptly with status 0."""
        script = """
import numpy as np
from repro.core._pool import WorkerPoolMixin
from repro.core.refactor import RefactorConfig, refactor

class Host(WorkerPoolMixin):
    num_workers = 2
    def _pool_size(self):
        return self.num_workers

data = np.linspace(0.0, 1.0, 2520).reshape(18, 14, 10)
field = refactor(data, RefactorConfig(num_workers=2, backend="processes:2"))
host = Host()
host.backend = "threads:2"
host.map_jobs(abs, [-1, 2, -3, 4])
print("leaked-ok", len(field.levels))
# exit WITHOUT close() on the host, the shared process backend, or
# the thread pool: the atexit registries must reap them all
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "leaked-ok" in result.stdout


# -- tentpole: self-healing pool --------------------------------------------

def _task_square(state, x):
    return x * x


def _task_pid(state):
    return os.getpid()


def _is_zombie(pid: int) -> bool:
    """True when *pid* is a terminated-but-unreaped child (state Z)."""
    try:
        with open(f"/proc/{pid}/stat") as fh:
            return fh.read().rsplit(")", 1)[1].split()[0] == "Z"
    except OSError:
        return False  # reaped: the /proc entry is gone


class TestSelfHealingPool:
    """Worker death is an incident the pool absorbs, not a batch error."""

    @pytest.mark.parametrize("mode", ["exit", "sigkill"])
    def test_worker_kill_heals_batch(self, tmp_path, mode):
        """One seeded kill mid-batch: the dead worker is respawned in
        place, the lost task retried there, and the batch completes
        with every result intact — the kill is visible only in the
        health counters."""
        backend = ProcessBackend(2)
        try:
            chaos = WorkerChaos({3: mode}, tmp_path)
            backend.install_chaos(chaos)
            sq = task_name(_task_square)
            results = backend.map_calls([(sq, (i,), None) for i in range(8)])
            assert results == [i * i for i in range(8)]
            assert chaos.total_fired() == 1
            health = backend.health()
            assert health["respawns"] == 1
            assert health["task_retries"] == 1
            assert health["quarantines"] == 0
            assert health["alive"] is True
        finally:
            backend.close()

    def test_shared_objects_survive_respawn(self, tmp_path):
        """The parent keeps every ``ensure_shared`` object; a respawned
        worker gets them restored without the owning engine re-shipping
        — a respawn is invisible to shared-state consumers."""
        backend = ProcessBackend(2)
        try:
            backend.ensure_shared("cfg", {"answer": 42})
            backend.install_chaos(WorkerChaos({0: "exit"}, tmp_path))
            sq = task_name(_task_square)
            assert backend.map_calls(
                [(sq, (i,), None) for i in range(4)]
            ) == [0, 1, 4, 9]
            assert backend.health()["respawns"] == 1
            got = backend.broadcast(task_name(_read_shared), "cfg")
            assert got == [{"answer": 42}] * backend.num_workers
        finally:
            backend.close()

    def test_sticky_routing_survives_respawn(self, tmp_path):
        """In-place slot replacement keeps ``worker_for`` stable: sticky
        keys keep resolving to the same slot across a respawn."""
        backend = ProcessBackend(2)
        try:
            key = "tile-(0, 1)"
            index = backend.worker_for(key)
            backend.install_chaos(WorkerChaos({0: "exit"}, tmp_path))
            sq = task_name(_task_square)
            results = backend.map_calls([(sq, (i,), key) for i in range(4)])
            assert results == [0, 1, 4, 9]
            assert backend.worker_for(key) == index
            assert backend.health()["respawns"] == 1
        finally:
            backend.close()

    def test_poison_task_quarantined_batch_survives(self, tmp_path):
        """A task that kills every worker it lands on exhausts its retry
        budget and settles as *that call's* failure; its batchmates
        still return correct results."""
        backend = ProcessBackend(2)
        try:
            chaos = WorkerChaos({2: ("exit", 10)}, tmp_path)
            backend.install_chaos(chaos)
            sq = task_name(_task_square)
            outcomes = backend.map_calls(
                [(sq, (i,), None) for i in range(6)], settle=True
            )
            for i, (ok, value) in enumerate(outcomes):
                if i == 2:
                    assert ok is False
                    assert isinstance(value, WorkerCrashedError)
                    assert "quarantined" in str(value)
                else:
                    assert ok is True and value == i * i
            # budget = max_task_retries retries → retries + 1 crashes
            assert chaos.fired(2) == backend.max_task_retries + 1
            health = backend.health()
            assert health["quarantines"] == 1
            assert health["task_retries"] == backend.max_task_retries
            assert health["respawns"] == backend.max_task_retries + 1
        finally:
            backend.close()

    def test_poison_task_raises_typed_and_pool_survives(self, tmp_path):
        """Without ``settle`` the quarantine surfaces as a typed
        :class:`WorkerCrashedError` — and the pool stays usable."""
        backend = ProcessBackend(2)
        try:
            backend.install_chaos(WorkerChaos({1: ("sigkill", 10)}, tmp_path))
            sq = task_name(_task_square)
            with pytest.raises(WorkerCrashedError, match="quarantined"):
                backend.map_calls([(sq, (i,), None) for i in range(4)])
            backend.clear_chaos()
            assert backend.map_calls([(sq, (5,), None)]) == [25]
        finally:
            backend.close()

    def test_deadline_settles_hung_worker(self, tmp_path):
        """A hung-but-alive worker is the failure mode only deadlines
        can bound: on expiry it is killed and respawned and the call
        settles as :class:`WorkerTimeoutError` while its batchmates
        return normally. Run under a watchdog — before deadlines this
        blocked forever."""
        backend = ProcessBackend(2)
        outcome = {}

        def run():
            backend.install_chaos(WorkerChaos({1: "hang"}, tmp_path))
            sq = task_name(_task_square)
            outcome["result"] = backend.map_calls(
                [(sq, (i,), None) for i in range(4)],
                deadline=1.0, settle=True,
            )

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        worker.join(timeout=60)
        try:
            assert not worker.is_alive(), \
                "deadline failed to bound a hung worker"
            outcomes = outcome["result"]
            assert [v for ok, v in outcomes if ok] == [0, 4, 9]
            assert isinstance(outcomes[1][1], WorkerTimeoutError)
            assert isinstance(outcomes[1][1], TimeoutError)  # taxonomy
            health = backend.health()
            assert health["deadline_kills"] == 1
            assert health["respawns"] == 1
        finally:
            backend.close()

    def test_pool_default_deadline_applies(self, tmp_path):
        """``default_deadline`` covers calls that pass no per-call
        deadline; without ``settle`` the timeout is raised typed."""
        backend = ProcessBackend(2, default_deadline=1.0)
        outcome = {}

        def run():
            backend.install_chaos(WorkerChaos({0: "hang"}, tmp_path))
            sq = task_name(_task_square)
            try:
                backend.map_calls([(sq, (i,), None) for i in range(4)])
            except BaseException as exc:  # noqa: BLE001 - transported
                outcome["exc"] = exc

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        worker.join(timeout=60)
        try:
            assert not worker.is_alive(), \
                "default deadline failed to bound a hung worker"
            assert isinstance(outcome["exc"], WorkerTimeoutError)
            backend.clear_chaos()
            sq = task_name(_task_square)
            assert backend.map_calls([(sq, (7,), None)]) == [49]
        finally:
            backend.close()

    def test_worker_killed_between_batches_heals_on_next_dispatch(self):
        """Death while idle (no task in flight): the next dispatch sees
        the closed pipe or the EOF, replaces the worker, and the batch
        completes — no caller-visible error."""
        backend = ProcessBackend(2)
        try:
            sq = task_name(_task_square)
            assert backend.map_calls(
                [(sq, (i,), None) for i in range(4)]
            ) == [0, 1, 4, 9]
            pids = backend.broadcast(task_name(_task_pid))
            os.kill(pids[0], signal.SIGKILL)
            giveup = time.monotonic() + 10
            while (backend._workers[0].process.is_alive()
                   and time.monotonic() < giveup):
                time.sleep(0.01)
            assert backend.map_calls(
                [(sq, (i,), None) for i in range(4)]
            ) == [0, 1, 4, 9]
            assert backend.health()["respawns"] >= 1
        finally:
            backend.close()

    def test_health_counters_reset_on_close(self, tmp_path):
        """Recovery counters describe the current worker set: close()
        zeroes them (satellite: telemetry lifecycle)."""
        backend = ProcessBackend(2)
        try:
            backend.install_chaos(WorkerChaos({0: "exit"}, tmp_path))
            sq = task_name(_task_square)
            backend.map_calls([(sq, (i,), None) for i in range(4)])
            assert backend.health()["respawns"] == 1
            backend.close()
            health = backend.health()
            assert health["alive"] is False
            assert health["respawns"] == 0
            assert health["task_retries"] == 0
            assert health["quarantines"] == 0
            assert health["deadline_kills"] == 0
        finally:
            backend.close()


# -- satellite: zombie reaping ----------------------------------------------

class TestZombieReaping:
    pytestmark = pytest.mark.skipif(
        not sys.platform.startswith("linux"),
        reason="zombie detection reads /proc",
    )

    def test_abandon_reaps_killed_and_live_workers(self):
        """Regression: ``_abandon()`` used to terminate() without
        join(), leaving every abandoned worker a zombie for the life of
        the parent. It must reap (join) them all — including one that
        already died on its own."""
        backend = ProcessBackend(2)
        backend.ensure_alive()
        procs = [w.process for w in backend._workers]
        os.kill(procs[0].pid, signal.SIGKILL)
        backend._abandon()
        for proc in procs:
            assert not proc.is_alive()
            assert not _is_zombie(proc.pid), \
                f"worker pid {proc.pid} left a zombie after _abandon()"

    def test_close_reaps_all_workers(self):
        backend = ProcessBackend(2)
        backend.ensure_alive()
        pids = [w.process.pid for w in backend._workers]
        backend.close()
        for pid in pids:
            assert not _is_zombie(pid), \
                f"worker pid {pid} left a zombie after close()"


# -- satellite: pool health through the service -----------------------------

class TestPoolHealthTelemetry:
    def test_service_stats_surface_pool_health(self, stored, tmp_path):
        """A worker kill inside a service session shows up in
        ``RetrievalService.stats()['pool']`` — the operator-facing
        window into pool recovery."""
        service = RetrievalService(stored)
        service.backend = "processes:2"
        backend = shared_process_backend(2)
        chaos = WorkerChaos({0: "exit"}, tmp_path)
        backend.install_chaos(chaos)
        try:
            with service.session(
                "vx", num_workers=2, backend="processes:2"
            ) as session:
                session.reconstruct(tolerance=1e-2)
            pool = service.stats()["pool"]
            assert pool is not None
            assert pool["uid"] == backend.uid
            assert pool["respawns"] >= 1
            assert pool["task_retries"] >= 1
            assert chaos.total_fired() == 1
        finally:
            backend.clear_chaos()
            service.close()

    def test_serial_service_reports_no_pool(self, stored):
        service = RetrievalService(stored)
        service.backend = "serial"
        assert service.stats()["pool"] is None
        service.close()

    def test_stats_track_replacement_pool(self, stored):
        """Growing the shared backend mid-session replaces the pool;
        stats() must report the *current* pool (fresh uid, counters
        reset), not a snapshot of the dead one."""
        service = RetrievalService(stored)
        service.backend = "processes:2"
        before = shared_process_backend(2)
        with service.session(
            "vx", num_workers=2, backend="processes:2"
        ) as session:
            session.reconstruct(tolerance=1e-1)
            first = service.stats()["pool"]
            assert first["uid"] == before.uid
            grown = shared_process_backend(before.num_workers + 1)
            assert grown is not before
            second = service.stats()["pool"]
            assert second["uid"] == grown.uid
            assert second["respawns"] == 0
            session.reconstruct(tolerance=1e-2)  # session still works
        service.close()
