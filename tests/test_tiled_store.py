"""Property tests for store-backed tiled fields and ROI retrieval.

The guarantees under test (ISSUE 5):

* the tiled refactor → store → open → reconstruct path stitches
  bit-identically to the in-memory tiled path;
* the global L∞ bound a tiled reconstruction reports equals the max of
  the per-tile bounds;
* ``reconstruct(region=...)`` equals the same slice of a full-domain
  reconstruction at every staircase step, while touching (opening,
  fetching) only the tiles the region overlaps;
* the service's tiled sessions share segment bytes through the cache
  and report residency through ``stats()``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.reconstruct import Reconstructor
from repro.core.service import RetrievalService
from repro.core.store import (
    DirectoryStore,
    MemoryStore,
    ShardedDirectoryStore,
    open_tiled_field,
    store_tiled_field,
)
from repro.core.tiling import (
    TiledReconstructor,
    TiledRefactorer,
    normalize_region,
)
from repro.data import generators as gen

STAIRCASE = [1e-1, 1e-3, 1e-5]


@pytest.fixture(scope="module")
def field():
    return gen.gaussian_random_field((20, 24, 16), -2.0, seed=11,
                                     dtype=np.float64)


@pytest.fixture(scope="module")
def tiled(field):
    return TiledRefactorer((12, 12, 12)).refactor(field, name="rho")


class TestStoreRoundtrip:
    @pytest.mark.parametrize("store_cls", [MemoryStore, DirectoryStore,
                                           ShardedDirectoryStore])
    def test_store_open_matches_in_memory_bitwise(
        self, field, tiled, store_cls, tmp_path
    ):
        """Property (a): the store round-trip stitches bit-identically
        to the in-memory tiled path at every staircase step."""
        store = (store_cls() if store_cls is MemoryStore
                 else store_cls(tmp_path / "s"))
        store_tiled_field(store, tiled)
        mem = TiledReconstructor(tiled)
        lazy = TiledReconstructor(open_tiled_field(store, "rho"))
        for tol in STAIRCASE:
            data_m, bound_m = mem.reconstruct(tolerance=tol)
            data_l, bound_l = lazy.reconstruct(tolerance=tol)
            assert np.array_equal(data_m, data_l)
            assert bound_m == bound_l
            assert float(np.max(np.abs(data_l - field))) <= tol

    def test_single_manifest_flush(self, tiled, tmp_path):
        store = DirectoryStore(tmp_path / "s")
        store_tiled_field(store, tiled)
        assert store.manifest_writes == 1

    def test_open_is_lazy(self, tiled, tmp_path):
        """Opening fetches only the tiled index; tiles open on touch."""
        store = DirectoryStore(tmp_path / "s")
        store_tiled_field(store, tiled)
        store.reads = store.bytes_read = 0
        lazy = open_tiled_field(store, "rho")
        assert store.reads == 1  # the <name>.tiles record alone
        assert lazy.opened_tiles == []
        assert lazy.total_bytes() == tiled.total_bytes()  # from the index
        assert store.reads == 1
        lazy.fields[2]
        assert lazy.opened_tiles == [2]

    def test_reconstructor_construction_is_free(self, tiled, tmp_path):
        """Wrapping a stored field builds no per-tile state until a
        reconstruction touches tiles (the 1000-tile-field guarantee)."""
        store = MemoryStore()
        store_tiled_field(store, tiled)
        store.reads = 0
        lazy = open_tiled_field(store, "rho")
        recon = TiledReconstructor(lazy)
        assert store.reads == 1
        assert recon.touched_tiles == []
        assert recon.decode_state_bytes() == 0
        assert recon.fetched_bytes == 0

    def test_missing_tiled_field_raises_key_error(self, tmp_path):
        store = DirectoryStore(tmp_path / "s")
        with pytest.raises(KeyError, match="tiled"):
            open_tiled_field(store, "nope")

    def test_store_preserves_metadata(self, tiled, tmp_path):
        store = DirectoryStore(tmp_path / "s")
        store_tiled_field(store, tiled)
        lazy = open_tiled_field(store, "rho")
        assert lazy.shape == tiled.shape
        assert lazy.dtype == tiled.dtype
        assert lazy.value_range == tiled.value_range
        assert lazy.name == "rho"
        assert [t.offset for t in lazy.tiles] == \
            [t.offset for t in tiled.tiles]


class TestGlobalBound:
    def test_global_bound_is_max_of_per_tile_bounds(self, tiled):
        """Property (b): tiles partition the domain, so the reported
        global bound must equal the max of the per-tile bounds."""
        for tol in STAIRCASE:
            _, bound = TiledReconstructor(tiled).reconstruct(tolerance=tol)
            per_tile = [
                Reconstructor(f).reconstruct(tolerance=tol).error_bound
                for f in tiled.fields
            ]
            assert bound == max(per_tile)

    def test_region_bound_is_max_over_touched_tiles(self, tiled):
        region = (slice(0, 12), slice(12, 24), slice(4, 16))
        recon = TiledReconstructor(tiled)
        _, bound = recon.reconstruct(tolerance=1e-3, region=region)
        touched = recon.touched_tiles
        per_tile = [
            Reconstructor(tiled.fields[i]).reconstruct(1e-3).error_bound
            for i in touched
        ]
        assert bound == max(per_tile)


class TestRegionRetrieval:
    @given(
        lo=st.tuples(st.integers(0, 19), st.integers(0, 23),
                     st.integers(0, 15)),
        extent=st.tuples(st.integers(1, 12), st.integers(1, 12),
                         st.integers(1, 8)),
    )
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_region_equals_full_slice_every_step(
        self, field, tiled, lo, extent
    ):
        """Property (c): at every staircase step the ROI result is the
        same slice of the full-domain reconstruction, bit for bit."""
        region = tuple(
            (o, min(o + e, s))
            for o, e, s in zip(lo, extent, field.shape)
        )
        slices = tuple(slice(a, b) for a, b in region)
        full = TiledReconstructor(tiled)
        roi = TiledReconstructor(tiled)
        for tol in STAIRCASE:
            data_f, _ = full.reconstruct(tolerance=tol)
            data_r, bound_r = roi.reconstruct(tolerance=tol, region=region)
            assert data_r.shape == tuple(b - a for a, b in region)
            assert np.array_equal(data_r, data_f[slices])
            if data_r.size:
                assert float(np.max(np.abs(
                    data_r - field[slices]
                ))) <= tol
                assert bound_r <= tol

    def test_region_touches_only_overlapping_tiles(self, tiled, tmp_path):
        store = DirectoryStore(tmp_path / "s")
        store_tiled_field(store, tiled)
        lazy = open_tiled_field(store, "rho")
        # Pinned serial: asserts on the *parent's* lazy-open accounting
        # (process workers open tiles in their own store copies).
        recon = TiledReconstructor(lazy, backend="serial")
        # One corner tile: tiles are 12^3 over (20, 24, 16).
        out, _ = recon.reconstruct(
            tolerance=1e-2, region=(slice(0, 8), slice(0, 8), slice(0, 8))
        )
        assert out.shape == (8, 8, 8)
        assert recon.touched_tiles == [0]
        assert lazy.opened_tiles == [0]
        # Widening the region later only opens the new tiles.
        recon.reconstruct(
            tolerance=1e-2, region=((0, 8), (0, 20), (0, 8))
        )
        assert recon.touched_tiles == [0, 2]

    def test_region_fetches_fewer_bytes_than_full(self, tiled, tmp_path):
        store = DirectoryStore(tmp_path / "s")
        store_tiled_field(store, tiled)

        # Pinned serial: measures the parent store's byte counters,
        # which process workers' pickled store copies bypass.
        full = TiledReconstructor(open_tiled_field(store, "rho"),
                                  backend="serial")
        before = store.bytes_read
        full.reconstruct(tolerance=1e-3)
        full_bytes = store.bytes_read - before

        roi = TiledReconstructor(open_tiled_field(store, "rho"),
                                  backend="serial")
        before = store.bytes_read
        roi.reconstruct(tolerance=1e-3,
                        region=((0, 8), (0, 8), (0, 8)))
        roi_bytes = store.bytes_read - before
        assert roi_bytes < full_bytes / 2

    def test_region_staircase_is_incremental_per_tile(self, tiled):
        # Pinned serial: reaches into the parent-resident per-tile
        # reconstructor (worker-resident under the process backend).
        recon = TiledReconstructor(tiled, backend="serial")
        region = ((0, 8), (0, 8), (0, 8))
        recon.reconstruct(tolerance=1e-1, region=region)
        coarse = recon.fetched_bytes
        recon.reconstruct(tolerance=1e-4, region=region)
        assert recon.fetched_bytes > coarse
        # The touched tile reused its decode state: only newly planned
        # groups were decoded on the refinement step.
        tile_recon = recon._recons[0]
        assert tile_recon.decode_counters.groups_decoded == \
            sum(tile_recon.fetched_groups)

    def test_empty_region_returns_empty(self, tiled):
        out, bound = TiledReconstructor(tiled).reconstruct(
            tolerance=1e-2, region=((3, 3), (0, 24), (0, 16))
        )
        assert out.shape == (0, 24, 16)
        assert bound == 0.0

    def test_region_validation(self, tiled):
        recon = TiledReconstructor(tiled)
        with pytest.raises(ValueError, match="rank"):
            recon.reconstruct(tolerance=1e-2, region=((0, 8), (0, 8)))
        with pytest.raises(ValueError, match="outside"):
            recon.reconstruct(
                tolerance=1e-2, region=((0, 8), (0, 8), (0, 99))
            )
        with pytest.raises(ValueError, match="unit-step"):
            recon.reconstruct(
                tolerance=1e-2,
                region=(slice(0, 8, 2), slice(0, 8), slice(0, 8)),
            )

    def test_normalize_region_none_and_open_slices(self):
        assert normalize_region((None, slice(None, 5), slice(3, None)),
                                (8, 9, 10)) == \
            (slice(0, 8), slice(0, 5), slice(3, 10))


class TestTiledService:
    def test_tiled_session_region_staircase(self, field, tiled, tmp_path):
        store = DirectoryStore(tmp_path / "s")
        store_tiled_field(store, tiled)
        service = RetrievalService(store, cache_bytes=8 << 20)
        region = ((4, 16), (0, 12), (4, 16))
        slices = tuple(slice(a, b) for a, b in region)
        with service.tiled_session("rho") as session:
            for tol in [1e-1, 1e-3]:
                out, bound = session.reconstruct(tolerance=tol,
                                                 region=region)
                assert float(np.max(np.abs(out - field[slices]))) <= tol
                assert bound <= tol
            stats = session.stats()
            assert stats["tiles"] == tiled.num_tiles
            assert 0 < stats["tiles_touched"] < tiled.num_tiles
            assert stats["decode_state_bytes"] > 0
            svc_sessions = service.stats()["sessions"]
            assert svc_sessions["open"] == 1
            assert svc_sessions["tiles_touched"] == stats["tiles_touched"]
            assert (svc_sessions["decode_state_bytes"]
                    == stats["decode_state_bytes"])
        assert service.stats()["sessions"]["open"] == 0
        service.close()

    def test_sessions_share_segment_bytes_through_cache(
        self, tiled, tmp_path
    ):
        store = DirectoryStore(tmp_path / "s")
        store_tiled_field(store, tiled)
        service = RetrievalService(store, cache_bytes=32 << 20)
        region = ((0, 8), (0, 8), (0, 8))
        # Pinned serial: the shared SegmentCache sits in the parent;
        # process-backed tiled sessions read the store directly and
        # bypass it (documented divergence, see docs/architecture.md).
        with service.tiled_session("rho", backend="serial") as first:
            first.reconstruct(tolerance=1e-3, region=region)
            cold = first.stats()
            assert cold["cold_bytes"] > 0
        with service.tiled_session("rho", backend="serial") as second:
            second.reconstruct(tolerance=1e-3, region=region)
            warm = second.stats()
        assert warm["cold_bytes"] == 0
        assert warm["cache_hit_bytes"] > 0
        service.close()

    def test_tiled_session_relative_tolerance(self, field, tiled,
                                              tmp_path):
        store = MemoryStore()
        store_tiled_field(store, tiled)
        service = RetrievalService(store)
        with service.tiled_session("rho") as session:
            out, _ = session.reconstruct(tolerance=1e-3, relative=True)
            assert float(np.max(np.abs(out - field))) <= \
                1e-3 * tiled.value_range
        service.close()

    def test_tiled_session_parallel_workers_match_serial(
        self, tiled, tmp_path
    ):
        store = MemoryStore()
        store_tiled_field(store, tiled)
        service = RetrievalService(store)
        with service.tiled_session("rho") as serial, \
                service.tiled_session("rho", num_workers=3) as parallel:
            out_s, bound_s = serial.reconstruct(tolerance=1e-3)
            out_p, bound_p = parallel.reconstruct(tolerance=1e-3)
        assert np.array_equal(out_s, out_p)
        assert bound_s == bound_p
        service.close()

    def test_prefetch_warms_touched_tiles_only(self, tiled, tmp_path):
        store = DirectoryStore(tmp_path / "s")
        store_tiled_field(store, tiled)
        service = RetrievalService(store, prefetch=True, num_workers=2)
        # Pinned serial: prefetch walks the parent-resident tile
        # reconstructors, which a process-backed session doesn't have.
        with service.tiled_session("rho", backend="serial") as session:
            session.reconstruct(tolerance=1e-1,
                                region=((0, 8), (0, 8), (0, 8)))
            service.drain_prefetch()
            assert service.prefetch_failures == 0
            # Prefetch only looks ahead within tiles the session
            # touched; untouched tiles stay unopened.
            assert session.tiled.opened_tiles == [0]
        service.close()
