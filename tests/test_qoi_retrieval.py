"""Tests for Algorithm 3 and the CP/MA/MAPE error-bound methods."""

import numpy as np
import pytest

from repro.core.refactor import refactor
from repro.data import generators as gen
from repro.qoi import (
    EB_METHODS,
    actual_qoi_error,
    retrieve_qoi,
    v_total,
)
from repro.qoi.eb_methods import next_group_bound


@pytest.fixture(scope="module")
def velocity_fields():
    dims = (12, 12, 12)
    vx, vy, vz = gen.turbulence_velocity(dims, seed=3, dtype=np.float64)
    original = {"vx": vx, "vy": vy, "vz": vz}
    fields = {k: refactor(v, name=k) for k, v in original.items()}
    return original, fields


class TestRetrieveQoI:
    @pytest.mark.parametrize("method", EB_METHODS)
    def test_tolerance_guaranteed(self, velocity_fields, method):
        original, fields = velocity_fields
        tol = 1e-2
        result = retrieve_qoi(fields, v_total(), tol, method=method)
        assert result.estimated_error <= tol
        actual = actual_qoi_error(v_total(), original, result.values)
        assert actual <= result.estimated_error

    @pytest.mark.parametrize("method", EB_METHODS)
    @pytest.mark.parametrize("tol", [1e-1, 1e-2, 1e-3])
    def test_fig13_invariant(self, velocity_fields, method, tol):
        """max actual <= max estimated <= requested tolerance."""
        original, fields = velocity_fields
        result = retrieve_qoi(fields, v_total(), tol, method=method)
        actual = actual_qoi_error(v_total(), original, result.values)
        assert actual <= result.estimated_error <= tol

    def test_ma_bitrate_not_worse_than_cp(self, velocity_fields):
        """MA fetches at the finest granularity — it should not fetch
        more than CP's over-preserving decay (the Tables 2/3 ordering)."""
        _, fields = velocity_fields
        tol = 1e-2
        ma = retrieve_qoi(fields, v_total(), tol, method="ma")
        cp = retrieve_qoi(fields, v_total(), tol, method="cp")
        assert ma.bitrate <= cp.bitrate + 1e-9

    def test_cp_iterations_not_more_than_ma(self, velocity_fields):
        _, fields = velocity_fields
        tol = 1e-3
        ma = retrieve_qoi(fields, v_total(), tol, method="ma")
        cp = retrieve_qoi(fields, v_total(), tol, method="cp")
        assert cp.iterations <= ma.iterations

    def test_mape_between(self, velocity_fields):
        """MAPE's bitrate and iterations land between (or equal to) CP's
        and MA's — the tradeoff the paper reports."""
        _, fields = velocity_fields
        tol = 1e-3
        ma = retrieve_qoi(fields, v_total(), tol, method="ma")
        cp = retrieve_qoi(fields, v_total(), tol, method="cp")
        mape = retrieve_qoi(fields, v_total(), tol, method="mape",
                            switch_threshold=10.0)
        assert mape.bitrate <= cp.bitrate + 1e-9
        assert mape.iterations <= ma.iterations

    def test_history_recorded(self, velocity_fields):
        _, fields = velocity_fields
        result = retrieve_qoi(fields, v_total(), 1e-2, method="ma")
        assert len(result.history) == result.iterations
        ests = [h.estimated_error for h in result.history]
        assert ests[-1] <= 1e-2
        fetched = [h.fetched_bytes for h in result.history]
        assert all(a <= b for a, b in zip(fetched, fetched[1:]))

    def test_tighter_tolerance_more_bytes(self, velocity_fields):
        _, fields = velocity_fields
        loose = retrieve_qoi(fields, v_total(), 1e-1, method="mape")
        tight = retrieve_qoi(fields, v_total(), 1e-3, method="mape")
        assert tight.fetched_bytes >= loose.fetched_bytes

    def test_missing_variable_rejected(self, velocity_fields):
        _, fields = velocity_fields
        partial = {"vx": fields["vx"]}
        with pytest.raises(ValueError, match="missing"):
            retrieve_qoi(partial, v_total(), 1e-2)

    def test_invalid_method(self, velocity_fields):
        _, fields = velocity_fields
        with pytest.raises(ValueError):
            retrieve_qoi(fields, v_total(), 1e-2, method="oracle")

    def test_invalid_tolerance(self, velocity_fields):
        _, fields = velocity_fields
        with pytest.raises(ValueError):
            retrieve_qoi(fields, v_total(), 0.0)

    def test_invalid_switch_threshold(self, velocity_fields):
        _, fields = velocity_fields
        with pytest.raises(ValueError):
            retrieve_qoi(fields, v_total(), 1e-2, method="mape",
                         switch_threshold=0.5)

    def test_custom_initial_bounds(self, velocity_fields):
        _, fields = velocity_fields
        result = retrieve_qoi(
            fields, v_total(), 1e-2, method="mape",
            initial_bounds={k: 0.5 for k in fields},
        )
        assert result.estimated_error <= 1e-2

    def test_qoi_values_shape(self, velocity_fields):
        original, fields = velocity_fields
        result = retrieve_qoi(fields, v_total(), 1e-2)
        assert result.qoi_values.shape == original["vx"].shape


class TestNextGroupBound:
    def test_bound_decreases(self, velocity_fields):
        _, fields = velocity_fields
        f = fields["vx"]
        start = [0] * len(f.levels)
        base = sum(
            w * lv.error_bound_for_groups(0)
            for w, lv in zip(f.level_weights, f.levels)
        )
        nb = next_group_bound(f, start)
        assert nb < base

    def test_exhausted_returns_current(self, velocity_fields):
        _, fields = velocity_fields
        f = fields["vx"]
        full = f.max_groups()
        current = sum(
            w * lv.error_bound_for_groups(g)
            for w, lv, g in zip(f.level_weights, f.levels, full)
        )
        assert next_group_bound(f, full) == current
