"""Chaos harness: progressive retrieval through seeded fault schedules.

The property under test is the one the resilience layer exists for:
**a progressive session whose retries succeed is bit-identical to a
clean run** — the fault schedule may cost extra reads, never accuracy.
And when retries are disabled so faults *do* land, degraded mode must
return exactly the last committed refinement and a later resume must be
bit-identical to the clean staircase.

Every schedule is deterministic (seed-driven, per-key access counts),
so failures replay exactly; the retry policies here never sleep.
"""

import numpy as np
import pytest

from repro.core.backends import shared_process_backend
from repro.core.errors import SegmentCorruptionError, TransientStoreError
from repro.core.faults import (
    FaultInjectingStore,
    ResilientReader,
    RetryPolicy,
    WorkerChaos,
)
from repro.core.refactor import refactor
from repro.core.reconstruct import Reconstructor
from repro.core.service import RetrievalService
from repro.core.store import (
    DirectoryStore,
    MemoryStore,
    load_field,
    open_field,
    open_tiled_field,
    store_field,
    store_tiled_field,
)
from repro.core.tiling import TiledReconstructor, TiledRefactorer
from repro.data import generators as gen

STAIRCASE = [1e-1, 3e-2, 1e-2, 3e-3, 1e-3]
CHAOS_SEEDS = [1, 2, 3, 4, 5]
ROI = (slice(4, 14), slice(2, 12), None)


def _noop_sleep(_):
    pass


def chaos_policy(max_attempts=8):
    """Aggressive retries with zero wall-clock cost."""
    return RetryPolicy(max_attempts=max_attempts, base_delay_s=0.0,
                       jitter=0.0, sleep=_noop_sleep)


@pytest.fixture(scope="module")
def data():
    return gen.gaussian_random_field((18, 14, 10), -2.0, seed=21,
                                     dtype=np.float64)


@pytest.fixture(scope="module")
def stored(data):
    store = MemoryStore()
    store_field(store, refactor(data, name="vx"))
    return store


@pytest.fixture(scope="module")
def tiled_stored(data):
    store = MemoryStore()
    tiled = TiledRefactorer((8, 8, 8)).refactor(data, name="rho")
    store_tiled_field(store, tiled)
    return store, tiled


@pytest.fixture(scope="module")
def clean_staircase(stored):
    recon = Reconstructor(open_field(stored, "vx"))
    return [recon.reconstruct(tolerance=t).data.copy() for t in STAIRCASE]


def _resilient(store, seed, transient_rate=0.10, corrupt_rate=0.0,
               max_attempts=8):
    flaky = FaultInjectingStore(store, seed=seed,
                                transient_rate=transient_rate,
                                corrupt_rate=corrupt_rate,
                                sleep=_noop_sleep)
    return flaky, ResilientReader(flaky, chaos_policy(max_attempts))


class TestEagerChaos:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_eager_load_bit_identical_under_transients(self, data, stored,
                                                       seed):
        flaky, reader = _resilient(stored, seed)
        chaotic = load_field(reader, "vx")
        clean = load_field(stored, "vx")
        r1 = Reconstructor(chaotic).reconstruct(tolerance=1e-3)
        r2 = Reconstructor(clean).reconstruct(tolerance=1e-3)
        np.testing.assert_array_equal(r1.data, r2.data)
        assert r1.error_bound == r2.error_bound

    def test_chaos_actually_injected(self, stored):
        """Guard against a vacuous harness: across the seeds, faults
        must actually fire (10% of dozens of reads)."""
        total = 0
        for seed in CHAOS_SEEDS:
            flaky, reader = _resilient(stored, seed)
            load_field(reader, "vx")
            total += flaky.injected_transients
        assert total > 0


class TestLazyStaircaseChaos:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_lazy_staircase_bit_identical(self, stored, clean_staircase,
                                          seed):
        flaky, reader = _resilient(stored, seed)
        recon = Reconstructor(open_field(reader, "vx"))
        for tol, ref in zip(STAIRCASE, clean_staircase):
            result = recon.reconstruct(tolerance=tol)
            assert result.degraded is False
            np.testing.assert_array_equal(result.data, ref)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:2])
    def test_staircase_with_corruption_heals(self, stored,
                                             clean_staircase, seed):
        """Bit-flips on the wire: CRC verification + retry heal them.

        The checksums live in the *retry* layer here, so a segment
        corrupted several accesses in a row still heals (the resolver
        above re-fetches only once on mismatch)."""
        import json

        from repro.core.store import index_checksums

        flaky, reader = _resilient(stored, seed, transient_rate=0.05,
                                   corrupt_rate=0.25)
        reader.register_checksums(
            index_checksums(json.loads(stored.get("vx.index").decode()))
        )
        recon = Reconstructor(open_field(reader, "vx"))
        for tol, ref in zip(STAIRCASE, clean_staircase):
            np.testing.assert_array_equal(
                recon.reconstruct(tolerance=tol).data, ref
            )

    def test_service_staircase_under_chaos(self, stored, clean_staircase):
        """The full service stack (cache + sessions) over a flaky
        store, retried below the cache."""
        flaky, reader = _resilient(stored, seed=9)
        service = RetrievalService(reader)
        with service.session("vx") as session:
            for tol, ref in zip(STAIRCASE, clean_staircase):
                np.testing.assert_array_equal(
                    session.reconstruct(tolerance=tol).data, ref
                )
        assert flaky.injected_transients > 0


class TestTiledRoiChaos:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_roi_staircase_bit_identical(self, tiled_stored, seed):
        store, tiled = tiled_stored
        ref = TiledReconstructor(tiled)
        flaky, reader = _resilient(store, seed)
        chaotic = TiledReconstructor(open_tiled_field(reader, "rho"))
        for tol in STAIRCASE:
            expected = ref.reconstruct(tolerance=tol, region=ROI)
            got = chaotic.reconstruct(tolerance=tol, region=ROI)
            assert got.degraded is False
            np.testing.assert_array_equal(got.data, expected.data)
            assert got.error_bound == expected.error_bound


class TestDegradeAndResume:
    def test_mid_staircase_outage_degrades_then_resumes(
        self, stored, clean_staircase
    ):
        """Retries disabled, outage at step 3: degrade returns step 2's
        committed answer; after recovery the staircase resumes
        bit-identically."""
        flaky = FaultInjectingStore(stored, sleep=_noop_sleep)
        recon = Reconstructor(open_field(flaky, "vx"))
        for tol, ref in zip(STAIRCASE[:2], clean_staircase[:2]):
            np.testing.assert_array_equal(
                recon.reconstruct(tolerance=tol).data, ref
            )

        flaky.transient_rate = 1.0  # total outage, no retry layer
        degraded = recon.reconstruct(tolerance=STAIRCASE[2],
                                     on_fault="degrade")
        assert degraded.degraded is True
        assert degraded.failed_groups is not None
        np.testing.assert_array_equal(degraded.data, clean_staircase[1])

        flaky.transient_rate = 0.0  # store recovers
        for tol, ref in zip(STAIRCASE[2:], clean_staircase[2:]):
            resumed = recon.reconstruct(tolerance=tol)
            assert resumed.degraded is False
            np.testing.assert_array_equal(resumed.data, ref)

    def test_repeated_degrade_is_stable(self, stored, clean_staircase):
        """Asking again during the outage keeps returning the same
        committed answer — degrade is idempotent, not compounding."""
        flaky = FaultInjectingStore(stored, sleep=_noop_sleep)
        recon = Reconstructor(open_field(flaky, "vx"))
        recon.reconstruct(tolerance=STAIRCASE[0])
        flaky.transient_rate = 1.0
        first = recon.reconstruct(tolerance=1e-3, on_fault="degrade")
        second = recon.reconstruct(tolerance=1e-3, on_fault="degrade")
        assert first.degraded and second.degraded
        np.testing.assert_array_equal(first.data, second.data)
        np.testing.assert_array_equal(first.data, clean_staircase[0])

    @pytest.mark.parent_store_mutation
    def test_tiled_roi_outage_degrades_then_resumes(self, tiled_stored):
        store, tiled = tiled_stored
        ref = TiledReconstructor(tiled)
        ref_steps = [ref.reconstruct(tolerance=t, region=ROI)
                     for t in STAIRCASE[:3]]

        flaky = FaultInjectingStore(store, sleep=_noop_sleep)
        recon = TiledReconstructor(open_tiled_field(flaky, "rho"))
        step1 = recon.reconstruct(tolerance=STAIRCASE[0], region=ROI)
        np.testing.assert_array_equal(step1.data, ref_steps[0].data)

        flaky.transient_rate = 1.0
        degraded = recon.reconstruct(tolerance=STAIRCASE[1], region=ROI,
                                     on_fault="degrade")
        assert degraded.degraded is True
        assert degraded.failed_tiles
        np.testing.assert_array_equal(degraded.data, step1.data)

        flaky.transient_rate = 0.0
        for tol, expected in zip(STAIRCASE[1:3], ref_steps[1:3]):
            resumed = recon.reconstruct(tolerance=tol, region=ROI)
            assert resumed.degraded is False
            np.testing.assert_array_equal(resumed.data, expected.data)


class TestOnDiskCorruptionRecovery:
    def test_directory_store_corruption_degrade_restore_resume(
        self, data, tmp_path
    ):
        """End-to-end repair story on a real directory store: corrupt a
        segment file on disk, watch the typed error, degrade through
        the outage, restore the file, resume bit-identically."""
        store = DirectoryStore(tmp_path / "s")
        store_field(store, refactor(data, name="vx"))
        ref = Reconstructor(open_field(store, "vx"))
        ref1 = ref.reconstruct(tolerance=STAIRCASE[0])
        ref2 = ref.reconstruct(tolerance=STAIRCASE[3])

        recon = Reconstructor(open_field(store, "vx"))
        step1 = recon.reconstruct(tolerance=STAIRCASE[0])
        np.testing.assert_array_equal(step1.data, ref1.data)

        # Garble every not-yet-fetched payload segment on disk.
        originals = {}
        for key in store.keys():
            if ".index" in key:
                continue
            path = tmp_path / "s" / key
            blob = path.read_bytes()
            originals[key] = blob
            path.write_bytes(b"\xff" + blob[1:])

        with pytest.raises(SegmentCorruptionError):
            recon.reconstruct(tolerance=STAIRCASE[3])
        degraded = recon.reconstruct(tolerance=STAIRCASE[3],
                                     on_fault="degrade")
        assert degraded.degraded is True
        np.testing.assert_array_equal(degraded.data, step1.data)

        for key, blob in originals.items():  # the operator repairs
            (tmp_path / "s" / key).write_bytes(blob)
        resumed = recon.reconstruct(tolerance=STAIRCASE[3])
        assert resumed.degraded is False
        np.testing.assert_array_equal(resumed.data, ref2.data)

    def test_permanent_single_segment_failure_gives_up_typed(
        self, stored
    ):
        """One permanently-failing key: retries exhaust and the typed
        transient error (not a decode crash) reaches the caller."""
        key = next(k for k in stored.keys()
                   if ".index" not in k and ".L0." in k)
        flaky = FaultInjectingStore(stored, fail_first={key: 10 ** 9},
                                    sleep=_noop_sleep)
        reader = ResilientReader(flaky, chaos_policy(max_attempts=3))
        recon = Reconstructor(open_field(reader, "vx"))
        with pytest.raises(TransientStoreError):
            recon.reconstruct(tolerance=1e-3)
        assert reader.policy.giveups >= 1


class TestProcessBackendChaosParity:
    """Seeded chaos schedules replay bit-identically across backends.

    Fault decisions are pure functions of ``(seed, key, nth-access)``
    and the injector's per-key access counters travel with its pickled
    copy, so the process backend sees the *same* schedule the serial
    engine does: untiled fetches stay parent-side, and tiled fetches
    are pinned one-tile-per-worker. Retried transients must therefore
    cost identical extra reads and zero accuracy under every backend.
    """

    @pytest.mark.backend
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_untiled_transient_staircase_parity(self, stored,
                                                clean_staircase, seed):
        def run(backend):
            flaky, reader = _resilient(stored, seed)
            recon = Reconstructor(open_field(reader, "vx"),
                                  num_workers=2, backend=backend)
            steps = [recon.reconstruct(tolerance=t) for t in STAIRCASE]
            return steps, flaky.injected_transients, flaky.reads
        (serial, s_faults, s_reads) = run(None)
        (procs, p_faults, p_reads) = run("processes:2")
        assert s_faults == p_faults
        assert s_reads == p_reads
        for clean, a, b in zip(clean_staircase, serial, procs):
            np.testing.assert_array_equal(a.data, b.data)
            np.testing.assert_array_equal(b.data, clean)
            assert a.error_bound == b.error_bound
            assert a.incremental_bytes == b.incremental_bytes
            assert b.degraded is False

    @pytest.mark.backend
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_tiled_roi_transient_staircase_parity(self, tiled_stored,
                                                  seed):
        store, _ = tiled_stored

        def run(backend):
            flaky, reader = _resilient(store, seed)
            recon = TiledReconstructor(open_tiled_field(reader, "rho"),
                                       num_workers=2, backend=backend)
            steps = [recon.reconstruct(tolerance=t, region=ROI)
                     for t in STAIRCASE]
            io = recon.aggregate_io_counters().snapshot()
            recon.close()
            return steps, io

        (s_steps, s_io) = run(None)
        (p_steps, p_io) = run("processes:2")
        # stream-level traffic sits above the retry layer, so the
        # healed schedules cost the same successful reads everywhere
        assert s_io == p_io
        for a, b in zip(s_steps, p_steps):
            np.testing.assert_array_equal(a.data, b.data)
            assert a.error_bound == b.error_bound
            assert a.degraded is b.degraded is False
            assert a.failed_tiles == b.failed_tiles == []

    @pytest.mark.backend
    def test_tiled_fail_first_degrade_schedule_parity(self, tiled_stored):
        """Pre-programmed hard faults (no retry headroom) must produce
        the *same* degraded steps and the same clean resume."""
        store, _ = tiled_stored
        schedule = {
            "rho.T0_0_0.index": 1,
            "rho.T0_1_0.L0.G0": 1,
        }

        def run(backend):
            flaky = FaultInjectingStore(store, fail_first=dict(schedule),
                                        sleep=_noop_sleep)
            recon = TiledReconstructor(open_tiled_field(flaky, "rho"),
                                       num_workers=2, backend=backend)
            steps = [recon.reconstruct(tolerance=t, region=ROI,
                                       on_fault="degrade")
                     for t in STAIRCASE[:3]]
            recon.close()
            return steps

        serial, procs = run(None), run("processes:2")
        assert any(s.degraded for s in serial)
        for a, b in zip(serial, procs):
            np.testing.assert_array_equal(a.data, b.data)
            assert a.degraded == b.degraded
            assert a.failed_tiles == b.failed_tiles
            assert a.failed_groups == b.failed_groups
        assert serial[-1].degraded is False


class TestPipelinedChaos:
    """The pipelined retrieval paths under the same chaos schedules.

    Fault decisions are pure functions of ``(seed, key, nth-access)``
    and the pipelined runtime keeps each work item's store accesses in
    the sequential path's exact key order, so every schedule here must
    replay *identically* with ``pipelined=True``: same healed data,
    same injected-fault counts, same degraded/failed-tile sets.
    """

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_untiled_transient_staircase_parity(self, stored,
                                                clean_staircase, seed):
        from repro.pipeline.retrieval import (
            RetrievalPipeline,
            pipelined_reconstruct,
        )

        def run(pipelined):
            flaky, reader = _resilient(stored, seed)
            recon = Reconstructor(open_field(reader, "vx"))
            pipe = (RetrievalPipeline(window=3, fetch_workers=2)
                    if pipelined else None)
            steps = [
                pipelined_reconstruct(recon, pipe, tolerance=t)
                if pipelined else recon.reconstruct(tolerance=t)
                for t in STAIRCASE
            ]
            if pipe is not None:
                pipe.close()
            return steps, flaky.injected_transients, flaky.reads

        (serial, s_faults, s_reads) = run(False)
        (piped, p_faults, p_reads) = run(True)
        assert s_faults == p_faults
        assert s_reads == p_reads
        for clean, a, b in zip(clean_staircase, serial, piped):
            np.testing.assert_array_equal(a.data, b.data)
            np.testing.assert_array_equal(b.data, clean)
            assert a.error_bound == b.error_bound
            assert b.degraded is False

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_tiled_roi_transient_staircase_parity(self, tiled_stored,
                                                  seed):
        store, _ = tiled_stored

        def run(pipelined):
            flaky, reader = _resilient(store, seed)
            recon = TiledReconstructor(
                open_tiled_field(reader, "rho"), num_workers=2,
                backend="threads:2", pipelined=pipelined,
                pipeline_window=3, fetch_workers=2,
            )
            steps = [recon.reconstruct(tolerance=t, region=ROI)
                     for t in STAIRCASE]
            io = recon.aggregate_io_counters().snapshot()
            recon.close()
            return steps, flaky.injected_transients, io

        (s_steps, s_faults, s_io) = run(False)
        (p_steps, p_faults, p_io) = run(True)
        assert s_faults == p_faults
        assert s_io == p_io
        for a, b in zip(s_steps, p_steps):
            np.testing.assert_array_equal(a.data, b.data)
            assert a.error_bound == b.error_bound
            assert a.degraded is b.degraded is False
            assert a.failed_tiles == b.failed_tiles == []

    def test_tiled_fail_first_degrade_schedule_parity(self, tiled_stored):
        """Pre-programmed hard faults (no retry headroom): the pipelined
        staircase must produce the *same* degraded steps — identical
        ``failed_tiles``/``failed_groups`` — and the same clean
        resume."""
        store, _ = tiled_stored
        schedule = {
            "rho.T0_0_0.index": 1,
            "rho.T0_1_0.L0.G0": 1,
        }

        def run(pipelined):
            flaky = FaultInjectingStore(store, fail_first=dict(schedule),
                                        sleep=_noop_sleep)
            recon = TiledReconstructor(
                open_tiled_field(flaky, "rho"), backend="serial",
                pipelined=pipelined, pipeline_window=3, fetch_workers=2,
            )
            steps = [recon.reconstruct(tolerance=t, region=ROI,
                                       on_fault="degrade")
                     for t in STAIRCASE[:3]]
            recon.close()
            return steps

        serial, piped = run(False), run(True)
        assert any(s.degraded for s in serial)
        for a, b in zip(serial, piped):
            np.testing.assert_array_equal(a.data, b.data)
            assert a.degraded == b.degraded
            assert a.failed_tiles == b.failed_tiles
            assert a.failed_groups == b.failed_groups
        assert serial[-1].degraded is False

    @pytest.mark.backend
    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:2])
    def test_tiled_worker_kill_with_pipelined_flag(self, tiled_stored,
                                                   tmp_path, seed):
        """Under ``processes:2`` the pipelined flag is inert (workers
        already overlap their own store I/O) — but it must stay
        *harmlessly* inert through seeded worker kills: the healed
        staircase is still bit-identical to the clean reference."""
        store, tiled = tiled_stored
        ref = TiledReconstructor(tiled)
        backend = shared_process_backend(2)
        chaos = WorkerChaos.single_kill(seed, num_tasks=8,
                                        scratch_dir=tmp_path)
        backend.install_chaos(chaos)
        before = backend.health()["respawns"]
        recon = TiledReconstructor(
            open_tiled_field(store, "rho"), num_workers=2,
            backend="processes:2", pipelined=True,
        )
        try:
            for tol in STAIRCASE:
                expected = ref.reconstruct(tolerance=tol, region=ROI)
                got = recon.reconstruct(tolerance=tol, region=ROI)
                assert got.degraded is False
                assert got.failed_tiles == []
                np.testing.assert_array_equal(got.data, expected.data)
                assert got.error_bound == expected.error_bound
        finally:
            backend.clear_chaos()
            recon.close()
        assert chaos.total_fired() == 1
        assert backend.health()["respawns"] >= before + 1


class TestWorkerKillChaos:
    """Process-*level* chaos: seeded worker kills mid-staircase.

    Where :class:`TestProcessBackendChaosParity` injects store faults,
    these schedules kill the workers themselves (``os._exit``, no
    cleanup) via :class:`WorkerChaos`. The self-healing pool must make
    every kill invisible in the data — bit-identical to the serial
    staircase — and visible *only* in the pool's health counters.
    Marker files under ``tmp_path`` persist each schedule's fire counts
    across the kills it causes, so every test also asserts the chaos
    actually fired (no vacuous pass).
    """

    pytestmark = pytest.mark.backend

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_eager_staircase_bit_identical_under_worker_kill(
        self, stored, clean_staircase, tmp_path, seed
    ):
        """One seeded kill during the untiled staircase (every step
        dispatches its per-level decodes as one batch of 3)."""
        backend = shared_process_backend(2)
        chaos = WorkerChaos.single_kill(seed, num_tasks=3,
                                        scratch_dir=tmp_path)
        backend.install_chaos(chaos)
        try:
            before = backend.health()["respawns"]
            recon = Reconstructor(open_field(stored, "vx"),
                                  num_workers=2, backend="processes:2")
            steps = [recon.reconstruct(tolerance=t) for t in STAIRCASE]
        finally:
            backend.clear_chaos()
        assert chaos.total_fired() == 1
        assert backend.health()["respawns"] >= before + 1
        for step, ref in zip(steps, clean_staircase):
            assert step.degraded is False
            np.testing.assert_array_equal(step.data, ref)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_tiled_roi_staircase_bit_identical_under_worker_kill(
        self, tiled_stored, tmp_path, seed
    ):
        """One seeded kill during the tiled ROI staircase (8 tiles per
        step); the killed worker's resident tile sources are rebuilt
        transparently."""
        store, tiled = tiled_stored
        ref = TiledReconstructor(tiled)
        backend = shared_process_backend(2)
        chaos = WorkerChaos.single_kill(seed, num_tasks=8,
                                        scratch_dir=tmp_path)
        backend.install_chaos(chaos)
        before = backend.health()["respawns"]
        recon = TiledReconstructor(open_tiled_field(store, "rho"),
                                   num_workers=2, backend="processes:2")
        try:
            for tol in STAIRCASE:
                expected = ref.reconstruct(tolerance=tol, region=ROI)
                got = recon.reconstruct(tolerance=tol, region=ROI)
                assert got.degraded is False
                assert got.failed_tiles == []
                np.testing.assert_array_equal(got.data, expected.data)
                assert got.error_bound == expected.error_bound
        finally:
            backend.clear_chaos()
            recon.close()
        assert chaos.total_fired() == 1
        assert backend.health()["respawns"] >= before + 1

    def test_repeat_kill_rebuilds_worker_resident_state(
        self, tiled_stored, tmp_path
    ):
        """Fail-first-2: the same call index dies in step 1 (tile
        sources ride along — the in-batch retry heals) *and* in step 2
        (sources were resident on the killed worker — the retried task
        reports the loss and the engine re-ships). Both heals must stay
        bit-identical."""
        store, tiled = tiled_stored
        ref = TiledReconstructor(tiled)
        backend = shared_process_backend(2)
        chaos = WorkerChaos({1: ("exit", 2)}, tmp_path)
        backend.install_chaos(chaos)
        recon = TiledReconstructor(open_tiled_field(store, "rho"),
                                   num_workers=2, backend="processes:2")
        try:
            for tol in STAIRCASE[:3]:
                expected = ref.reconstruct(tolerance=tol, region=ROI)
                got = recon.reconstruct(tolerance=tol, region=ROI)
                assert got.degraded is False
                np.testing.assert_array_equal(got.data, expected.data)
        finally:
            backend.clear_chaos()
            recon.close()
        assert chaos.fired(1) == 2

    def test_service_session_staircase_under_worker_kill(
        self, stored, clean_staircase, tmp_path
    ):
        """The full service stack over a pool that loses a worker: the
        session's staircase stays bit-identical and the recovery is
        visible through ``RetrievalService.stats()['pool']``."""
        backend = shared_process_backend(2)
        before = backend.health()["respawns"]
        chaos = WorkerChaos({0: "exit"}, tmp_path)
        backend.install_chaos(chaos)
        service = RetrievalService(stored)
        service.backend = "processes:2"
        try:
            with service.session(
                "vx", num_workers=2, backend="processes:2"
            ) as session:
                for tol, ref in zip(STAIRCASE, clean_staircase):
                    step = session.reconstruct(tolerance=tol)
                    assert step.degraded is False
                    np.testing.assert_array_equal(step.data, ref)
            pool = service.stats()["pool"]
            assert pool is not None
            assert pool["respawns"] >= before + 1
        finally:
            backend.clear_chaos()
            service.close()
        assert chaos.total_fired() == 1

    def test_poison_tile_degrades_alone_then_resumes_bit_identical(
        self, tiled_stored, tmp_path
    ):
        """A tile whose decode kills every worker it lands on exhausts
        its retry budget and is quarantined; ``on_fault="degrade"``
        reports exactly that tile in ``failed_tiles`` while the other
        seven return real data. Once the poison clears, the same
        staircase resumes bit-identically — crash loss heals like
        store loss."""
        store, tiled = tiled_stored
        ref = TiledReconstructor(tiled)
        ref_steps = [ref.reconstruct(tolerance=t, region=ROI)
                     for t in STAIRCASE[:2]]
        backend = shared_process_backend(2)
        before = backend.health()["quarantines"]
        chaos = WorkerChaos({1: ("exit", 10)}, tmp_path)
        backend.install_chaos(chaos)
        recon = TiledReconstructor(open_tiled_field(store, "rho"),
                                   num_workers=2, backend="processes:2")
        try:
            degraded = recon.reconstruct(tolerance=STAIRCASE[0],
                                         region=ROI, on_fault="degrade")
            assert degraded.degraded is True
            assert len(degraded.failed_tiles) == 1
            assert backend.health()["quarantines"] == before + 1
            # the poison fired through its whole budget: initial try
            # plus max_task_retries consecutive fresh workers
            assert chaos.fired(1) == backend.max_task_retries + 1

            backend.clear_chaos()  # the poison clears
            resumed = recon.reconstruct(tolerance=STAIRCASE[0],
                                        region=ROI)
            assert resumed.degraded is False
            assert resumed.failed_tiles == []
            np.testing.assert_array_equal(resumed.data, ref_steps[0].data)
            nxt = recon.reconstruct(tolerance=STAIRCASE[1], region=ROI)
            np.testing.assert_array_equal(nxt.data, ref_steps[1].data)
            assert nxt.error_bound == ref_steps[1].error_bound
        finally:
            backend.clear_chaos()
            recon.close()
