"""Tests for the negabinary signed-coefficient encoding option."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitplane import decode_bitplanes, encode_bitplanes
from repro.bitplane.negabinary import (
    from_negabinary,
    negabinary_width,
    plane_error_bound_negabinary,
    to_negabinary,
    truncation_error_bound,
)
from repro.core.refactor import RefactorConfig, refactor
from repro.core.reconstruct import reconstruct
from repro.core.stream import RefactoredField


def sample(n=2048, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n).astype(dtype)


class TestNegabinaryCodes:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        v = rng.integers(-(2 ** 50), 2 ** 50, 5000)
        np.testing.assert_array_equal(from_negabinary(to_negabinary(v)), v)

    def test_known_values(self):
        # negabinary: 2 = 110, -1 = 11, -2 = 10, 3 = 111
        v = np.array([0, 1, -1, 2, -2, 3], dtype=np.int64)
        codes = to_negabinary(v)
        assert codes.tolist() == [0b0, 0b1, 0b11, 0b110, 0b10, 0b111]

    def test_width(self):
        assert negabinary_width(32) == 34
        with pytest.raises(ValueError):
            negabinary_width(0)

    def test_truncation_bound(self):
        assert truncation_error_bound(0) == 0.0
        assert truncation_error_bound(3) == pytest.approx(16.0 / 3.0)
        with pytest.raises(ValueError):
            truncation_error_bound(-1)

    def test_truncation_bound_is_sound(self):
        """Zeroing low digits never moves the value by more than the
        claimed (2/3)*2^d bound."""
        rng = np.random.default_rng(1)
        v = rng.integers(-(2 ** 30), 2 ** 30, 2000)
        codes = to_negabinary(v)
        for d in (1, 4, 9, 16):
            mask = ~np.uint64((1 << d) - 1)
            approx = from_negabinary(codes & mask)
            err = np.max(np.abs(approx - v))
            assert err <= truncation_error_bound(d) + 1e-9


class TestNegabinaryStreams:
    @pytest.mark.parametrize("design", ["locality_block", "register_block"])
    def test_plane_count_one_more_than_sign_magnitude(self, design):
        data = sample()
        nb = encode_bitplanes(data, 32, design=design,
                              signed_encoding="negabinary")
        sm = encode_bitplanes(data, 32, design=design)
        assert sm.num_planes == 33  # sign + 32 magnitudes
        assert nb.num_planes == 34  # base-(-2) digits, two extra

    @pytest.mark.parametrize("k", [0, 1, 8, 20, 33])
    def test_partial_decode_bound(self, k):
        data = sample(seed=3)
        stream = encode_bitplanes(data, 32, signed_encoding="negabinary")
        rec = decode_bitplanes(stream, k)
        bound = stream.error_bound(k)
        assert np.max(np.abs(rec - data)) <= bound + 1e-12

    def test_full_decode_near_lossless(self):
        data = sample(seed=4)
        stream = encode_bitplanes(data, 40, signed_encoding="negabinary")
        rec = decode_bitplanes(stream)
        bound = plane_error_bound_negabinary(
            stream.exponent, 40, stream.num_planes, stream.max_abs)
        assert np.max(np.abs(rec - data)) <= bound

    def test_serialization_preserves_encoding(self):
        from repro.bitplane.encoding import BitplaneStream

        stream = encode_bitplanes(sample(256), 16,
                                  signed_encoding="negabinary")
        back = BitplaneStream.from_bytes(stream.to_bytes())
        assert back.signed_encoding == "negabinary"
        np.testing.assert_array_equal(
            decode_bitplanes(back, 10), decode_bitplanes(stream, 10))

    def test_invalid_encoding_rejected(self):
        with pytest.raises(ValueError):
            encode_bitplanes(sample(16), 8, signed_encoding="ternary")


class TestNegabinaryPipeline:
    def test_error_control_end_to_end(self):
        rng = np.random.default_rng(7)
        data = rng.standard_normal((12, 13, 14))
        field = refactor(data, RefactorConfig(signed_encoding="negabinary"))
        for tol in (1e-1, 1e-3, 1e-5):
            r = reconstruct(field, tolerance=tol)
            assert np.max(np.abs(r.data - data)) <= tol

    def test_field_serialization_roundtrip(self):
        rng = np.random.default_rng(8)
        data = rng.standard_normal((10, 10, 10))
        field = refactor(data, RefactorConfig(signed_encoding="negabinary"))
        back = RefactoredField.from_bytes(field.to_bytes())
        assert back.levels[0].signed_encoding == "negabinary"
        r1 = reconstruct(field, tolerance=1e-3)
        r2 = reconstruct(back, tolerance=1e-3)
        np.testing.assert_array_equal(r1.data, r2.data)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RefactorConfig(signed_encoding="base3")


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(st.floats(-1e5, 1e5, allow_nan=False, width=64),
                  min_size=1, max_size=200),
    planes=st.integers(0, 33),
)
def test_property_negabinary_bound(data, planes):
    """Hypothesis: negabinary partial decode honors its bound."""
    arr = np.asarray(data, dtype=np.float64)
    stream = encode_bitplanes(arr, 32, signed_encoding="negabinary")
    rec = decode_bitplanes(stream, planes)
    bound = stream.error_bound(planes)
    assert np.max(np.abs(rec - arr)) <= bound * (1 + 1e-12) + 1e-300
