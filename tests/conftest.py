"""Suite-wide fixtures and the ``--backend`` re-run option.

``pytest --backend processes`` (or ``threads``/``serial``, optionally
``kind:N``) exports ``REPRO_BACKEND`` before collection, so every engine
built by any existing test resolves to that execution backend — the
whole suite doubles as a backend-conformance suite without duplicating a
single test. Tests that pin their own ``backend=`` (the differential
suite in ``test_backends.py``) are unaffected: an explicit argument
outranks the environment override.
"""

from __future__ import annotations

import os

import pytest

from repro.core.backends import BACKEND_ENV, parse_backend_spec


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--backend",
        action="store",
        default=None,
        metavar="KIND[:N]",
        help=(
            "run the suite with REPRO_BACKEND set to this execution "
            "backend (serial, threads, processes; optional :N worker "
            "count), e.g. --backend processes:2"
        ),
    )


def pytest_configure(config: pytest.Config) -> None:
    spec = config.getoption("--backend")
    if spec is None:
        return
    parse_backend_spec(spec)  # fail fast on junk before collection
    os.environ[BACKEND_ENV] = spec


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    spec = config.getoption("--backend")
    if spec is None or parse_backend_spec(spec)[0] != "processes":
        return
    # Mid-run mutations of a parent-side fault injector cannot reach
    # the pickled store copies tiled process workers decode from; the
    # equivalent coverage under processes uses pre-programmed
    # ``fail_first`` schedules (see TestProcessBackendChaosParity).
    skip = pytest.mark.skip(
        reason="mutates a parent-side store mid-run; unreachable from "
               "process-backend workers (use fail_first schedules)"
    )
    for item in items:
        if "parent_store_mutation" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def backend_option(request: pytest.FixtureRequest) -> str | None:
    """The ``--backend`` value (None when the suite runs natively)."""
    return request.config.getoption("--backend")
