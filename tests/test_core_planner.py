"""Tests for the retrieval planner."""

import numpy as np
import pytest

from repro.core.planner import (
    plan_for_planes,
    plan_full,
    plan_greedy,
    plan_round_robin,
)
from repro.core.refactor import RefactorConfig, refactor
from repro.data import generators as gen


@pytest.fixture(scope="module")
def field():
    data = gen.gaussian_random_field((16, 17, 18), -2.5, seed=2,
                                     dtype=np.float64)
    return refactor(data)


class TestGreedy:
    def test_bound_met(self, field):
        for tol in (1e-1, 1e-3, 1e-5):
            plan = plan_greedy(field, tol)
            assert plan.error_bound <= tol

    def test_zero_tolerance_fetches_everything(self, field):
        plan = plan_greedy(field, 0.0)
        assert plan.groups_per_level == field.max_groups()

    def test_huge_tolerance_fetches_nothing(self, field):
        plan = plan_greedy(field, 1e300)
        assert plan.groups_per_level == [0] * len(field.levels)
        assert plan.fetched_bytes == 0

    def test_rejects_nonfinite_tolerance(self, field):
        # A NaN previously fell through every comparison and silently
        # produced an empty plan; inf is rejected with it ("retrieve
        # nothing" must be asked for with a finite loose tolerance).
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="finite"):
                plan_greedy(field, bad)
            with pytest.raises(ValueError, match="finite"):
                plan_round_robin(field, bad)

    def test_monotone_bytes(self, field):
        plans = [plan_greedy(field, t) for t in (1e-1, 1e-2, 1e-3, 1e-4)]
        sizes = [p.fetched_bytes for p in plans]
        assert sizes == sorted(sizes)

    def test_greedy_never_worse_than_round_robin(self, field):
        for tol in (1e-1, 1e-2, 1e-3, 1e-4):
            g = plan_greedy(field, tol)
            rr = plan_round_robin(field, tol)
            assert g.fetched_bytes <= rr.fetched_bytes

    def test_start_seeds_plan(self, field):
        base = plan_greedy(field, 1e-2)
        refined = plan_greedy(field, 1e-4, start=base.groups_per_level)
        assert refined.covers(base)

    def test_rejects_negative_tolerance(self, field):
        with pytest.raises(ValueError):
            plan_greedy(field, -1.0)

    def test_rejects_bad_start(self, field):
        with pytest.raises(ValueError):
            plan_greedy(field, 1e-2, start=[0])
        bad = [lv.num_groups + 1 for lv in field.levels]
        with pytest.raises(ValueError):
            plan_greedy(field, 1e-2, start=bad)


class TestRoundRobin:
    def test_bound_met(self, field):
        plan = plan_round_robin(field, 1e-3)
        assert plan.error_bound <= 1e-3

    def test_terminates_when_infeasible(self, field):
        plan = plan_round_robin(field, 0.0)
        assert plan.groups_per_level == field.max_groups()

    def test_rejects_negative_tolerance(self, field):
        with pytest.raises(ValueError):
            plan_round_robin(field, -0.5)


class TestHelpers:
    def test_plan_full(self, field):
        plan = plan_full(field)
        assert plan.groups_per_level == field.max_groups()
        assert plan.fetched_bytes == field.total_bytes()

    def test_plan_for_planes(self, field):
        want = [3] * len(field.levels)
        plan = plan_for_planes(field, want)
        for lv, g, w in zip(field.levels, plan.groups_per_level, want):
            assert lv.planes_in_groups(g) >= min(
                w, lv.planes_in_groups(lv.num_groups)
            )

    def test_plan_for_planes_validates(self, field):
        with pytest.raises(ValueError):
            plan_for_planes(field, [1])

    def test_covers(self, field):
        small = plan_greedy(field, 1e-1)
        big = plan_greedy(field, 1e-4)
        assert big.covers(small)
        if big.fetched_bytes > small.fetched_bytes:
            assert not small.covers(big)
