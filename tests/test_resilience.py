"""Resilient segment I/O: taxonomy, fault injection, retries, recovery.

Covers the fault-tolerance subsystem end to end:

* the typed error taxonomy and its builtin-exception compatibility;
* store error normalization (missing segments, garbled manifests,
  crash-safe manifest flush);
* :class:`~repro.core.faults.FaultInjectingStore` determinism;
* :class:`~repro.core.faults.RetryPolicy` backoff/deadline/timeout;
* :class:`~repro.core.faults.ResilientReader` retry + verification;
* per-segment CRC32 recording and verify-on-fetch (direct and through
  the service :class:`~repro.core.service.SegmentCache`);
* corrupt persisted state (truncated indexes/segments, legacy indexes);
* degraded-mode progressive retrieval (``on_fault="degrade"``) and
  resume, for both plain and tiled sessions.
"""

import json
import struct
import threading
import zlib

import numpy as np
import pytest

from repro.core.errors import (
    RETRYABLE_ERRORS,
    SegmentCorruptionError,
    SegmentNotFoundError,
    StoreError,
    TransientStoreError,
)
from repro.core.faults import FaultInjectingStore, ResilientReader, RetryPolicy
from repro.core.refactor import refactor
from repro.core.reconstruct import Reconstructor
from repro.core.service import RetrievalService, SegmentCache
from repro.core.store import (
    DirectoryStore,
    MemoryStore,
    index_checksums,
    load_field,
    open_field,
    open_tiled_field,
    segment_checksum,
    store_field,
    store_tiled_field,
)
from repro.core.tiling import (
    TiledReconstructionResult,
    TiledReconstructor,
    TiledRefactorer,
)
from repro.data import generators as gen


def _noop_sleep(_):
    pass


def fast_policy(**kw):
    """A retry policy that never actually sleeps (for tests)."""
    kw.setdefault("max_attempts", 6)
    kw.setdefault("base_delay_s", 0.0)
    kw.setdefault("jitter", 0.0)
    kw.setdefault("sleep", _noop_sleep)
    return RetryPolicy(**kw)


@pytest.fixture(scope="module")
def field():
    data = gen.gaussian_random_field((16, 16, 8), -2.0, seed=3,
                                     dtype=np.float64)
    return data, refactor(data, name="vx")


@pytest.fixture()
def stored(field):
    _, f = field
    store = MemoryStore()
    store_field(store, f)
    return store


class TestTaxonomy:
    def test_not_found_is_keyerror(self):
        assert issubclass(SegmentNotFoundError, KeyError)
        assert issubclass(SegmentNotFoundError, StoreError)

    def test_corruption_is_valueerror(self):
        assert issubclass(SegmentCorruptionError, ValueError)
        assert issubclass(SegmentCorruptionError, StoreError)

    def test_transient_is_store_error(self):
        assert issubclass(TransientStoreError, StoreError)
        assert not issubclass(TransientStoreError, KeyError)

    def test_retryable_classification(self):
        assert TransientStoreError in RETRYABLE_ERRORS
        assert SegmentCorruptionError in RETRYABLE_ERRORS
        assert TimeoutError in RETRYABLE_ERRORS
        assert SegmentNotFoundError not in RETRYABLE_ERRORS


class TestStoreErrorNormalization:
    def test_memory_get_missing(self):
        store = MemoryStore()
        with pytest.raises(SegmentNotFoundError):
            store.get("ghost")
        with pytest.raises(KeyError):  # backward compatible
            store.get("ghost")

    def test_memory_size_of_missing(self):
        with pytest.raises(SegmentNotFoundError):
            MemoryStore().size_of("ghost")

    def test_directory_get_missing(self, tmp_path):
        store = DirectoryStore(tmp_path / "s")
        with pytest.raises(SegmentNotFoundError):
            store.get("ghost")

    def test_directory_size_of_missing(self, tmp_path):
        with pytest.raises(SegmentNotFoundError):
            DirectoryStore(tmp_path / "s").size_of("ghost")

    def test_directory_file_deleted_behind_manifest(self, tmp_path):
        store = DirectoryStore(tmp_path / "s")
        store.put("seg", b"payload")
        (tmp_path / "s" / "seg").unlink()
        with pytest.raises(SegmentNotFoundError):
            store.get("seg")


class TestManifestRobustness:
    def test_garbled_manifest_raises_typed_error(self, tmp_path):
        root = tmp_path / "s"
        DirectoryStore(root).put("seg", b"x")
        (root / "manifest.json").write_text("{not json!!")
        with pytest.raises(SegmentCorruptionError):
            DirectoryStore(root)

    def test_non_dict_manifest_raises_typed_error(self, tmp_path):
        root = tmp_path / "s"
        DirectoryStore(root).put("seg", b"x")
        (root / "manifest.json").write_text("[1, 2, 3]")
        with pytest.raises(SegmentCorruptionError):
            DirectoryStore(root)

    def test_flush_is_atomic_replace(self, tmp_path, monkeypatch):
        """A crash mid-flush must leave the previous manifest intact."""
        root = tmp_path / "s"
        store = DirectoryStore(root)
        store.put("a", b"one")

        import repro.core.store as store_mod

        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(store_mod.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            store.put("b", b"two")
        monkeypatch.undo()

        # The old manifest survived, no temp litter, and a fresh open
        # sees consistent (pre-crash) state.
        leftovers = [p for p in root.iterdir()
                     if p.name.startswith("manifest.json.")]
        assert leftovers == []
        reopened = DirectoryStore(root)
        assert reopened.keys() == ["a"]
        assert reopened.get("a") == b"one"


class TestFaultInjectingStore:
    def _base(self, **kw):
        inner = MemoryStore()
        inner.put("k", b"hello world")
        inner.put("j", b"other bytes")
        return inner, FaultInjectingStore(inner, sleep=_noop_sleep, **kw)

    def test_validates_rates(self):
        inner = MemoryStore()
        with pytest.raises(ValueError):
            FaultInjectingStore(inner, transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjectingStore(inner, corrupt_rate=-0.1)
        with pytest.raises(ValueError):
            FaultInjectingStore(inner, latency_s=-1.0)

    def test_transparent_at_zero_rates(self):
        _, flaky = self._base(seed=1)
        assert flaky.get("k") == b"hello world"
        assert flaky.reads == 1
        assert flaky.injected_transients == 0

    def test_fail_first_schedule(self):
        _, flaky = self._base(fail_first=2)
        for _ in range(2):
            with pytest.raises(TransientStoreError):
                flaky.get("k")
        assert flaky.get("k") == b"hello world"
        assert flaky.injected_transients == 2
        assert flaky.access_count("k") == 3

    def test_fail_first_per_key_mapping(self):
        _, flaky = self._base(fail_first={"k": 1})
        with pytest.raises(TransientStoreError):
            flaky.get("k")
        assert flaky.get("k") == b"hello world"
        assert flaky.get("j") == b"other bytes"  # unlisted key unaffected

    def test_transient_rate_one_always_fails(self):
        _, flaky = self._base(transient_rate=1.0)
        for _ in range(5):
            with pytest.raises(TransientStoreError):
                flaky.get("k")
        assert flaky.injected_transients == 5

    def test_outage_toggle_mid_run(self):
        _, flaky = self._base()
        assert flaky.get("k") == b"hello world"
        flaky.transient_rate = 1.0
        with pytest.raises(TransientStoreError):
            flaky.get("k")
        flaky.transient_rate = 0.0
        assert flaky.get("k") == b"hello world"

    def test_corruption_flips_exactly_one_bit(self):
        _, flaky = self._base(corrupt_rate=1.0, seed=7)
        blob = flaky.get("k")
        clean = b"hello world"
        assert blob != clean
        diff = int.from_bytes(blob, "big") ^ int.from_bytes(clean, "big")
        assert bin(diff).count("1") == 1
        assert flaky.injected_corruptions == 1

    def test_schedule_is_deterministic(self):
        """Same seed + same per-key access sequence => same faults."""

        def run(seed):
            inner = MemoryStore()
            inner.put("k", b"hello world")
            flaky = FaultInjectingStore(
                inner, seed=seed, transient_rate=0.4, corrupt_rate=0.3,
                sleep=_noop_sleep,
            )
            trace = []
            for _ in range(40):
                try:
                    trace.append(("ok", flaky.get("k")))
                except TransientStoreError:
                    trace.append(("transient", None))
            return trace

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_latency_accounting(self):
        slept = []
        inner = MemoryStore()
        inner.put("k", b"x")
        flaky = FaultInjectingStore(inner, latency_s=0.25,
                                    sleep=slept.append)
        flaky.get("k")
        flaky.get("k")
        assert slept == [0.25, 0.25]
        assert flaky.injected_latency_s == pytest.approx(0.5)

    def test_delegates_reader_surface(self):
        inner, flaky = self._base()
        flaky.put("new", b"written through")
        assert inner.get("new") == b"written through"
        assert "new" in flaky
        assert flaky.size_of("k") == len(b"hello world")
        assert set(flaky.keys()) == {"k", "j", "new"}


class TestRetryPolicy:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(attempt_timeout_s=0)

    def test_exponential_backoff_without_jitter(self):
        p = RetryPolicy(base_delay_s=0.01, max_delay_s=0.05, jitter=0.0)
        assert [p.delay_for(k) for k in (1, 2, 3, 4, 5)] == pytest.approx(
            [0.01, 0.02, 0.04, 0.05, 0.05]
        )

    def test_jitter_is_bounded_and_seeded(self):
        a = RetryPolicy(base_delay_s=0.01, jitter=0.5, seed=3)
        b = RetryPolicy(base_delay_s=0.01, jitter=0.5, seed=3)
        da = [a.delay_for(1) for _ in range(20)]
        db = [b.delay_for(1) for _ in range(20)]
        assert da == db  # same seed backs off identically
        assert all(0.01 <= d <= 0.015 + 1e-12 for d in da)

    def test_retries_transient_then_succeeds(self):
        p = fast_policy(max_attempts=5)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientStoreError("boom")
            return "ok"

        assert p.run(flaky) == "ok"
        assert p.attempts == 3
        assert p.retries == 2
        assert p.giveups == 0

    def test_non_retryable_raises_immediately(self):
        p = fast_policy()

        def missing():
            raise SegmentNotFoundError("gone")

        with pytest.raises(SegmentNotFoundError):
            p.run(missing)
        assert p.attempts == 1 and p.retries == 0

    def test_exhaustion_raises_last_error(self):
        p = fast_policy(max_attempts=3)

        def always():
            raise TransientStoreError("still down")

        with pytest.raises(TransientStoreError):
            p.run(always)
        assert p.attempts == 3
        assert p.giveups == 1

    def test_deadline_stops_before_sleeping_past_it(self):
        now = {"t": 0.0}
        slept = []

        def clock():
            return now["t"]

        def sleep(d):
            slept.append(d)
            now["t"] += d

        p = RetryPolicy(max_attempts=100, base_delay_s=1.0,
                        max_delay_s=1.0, jitter=0.0, deadline_s=2.5,
                        sleep=sleep, clock=clock)

        def always():
            raise TransientStoreError("down")

        with pytest.raises(TransientStoreError):
            p.run(always)
        # Two 1s sleeps fit the 2.5s budget; the third would not.
        assert slept == [1.0, 1.0]
        assert p.giveups == 1

    def test_attempt_timeout_classified_transient_and_retried(self):
        release = threading.Event()
        calls = {"n": 0}

        def slow_then_fast():
            calls["n"] += 1
            if calls["n"] == 1:
                release.wait(5.0)  # hangs well past the attempt timeout
            return "ok"

        p = fast_policy(max_attempts=3, attempt_timeout_s=0.05)
        try:
            assert p.run(slow_then_fast) == "ok"
            assert p.attempts == 2
            assert p.retries == 1
        finally:
            release.set()  # unblock the abandoned daemon thread

    def test_stats_snapshot(self):
        p = fast_policy()
        p.run(lambda: "ok")
        assert p.stats() == {"attempts": 1, "retries": 0, "giveups": 0}


class TestResilientReader:
    def test_rides_through_transients(self):
        inner = MemoryStore()
        inner.put("k", b"payload")
        flaky = FaultInjectingStore(inner, fail_first=2, sleep=_noop_sleep)
        reader = ResilientReader(flaky, fast_policy(max_attempts=4))
        assert reader.get("k") == b"payload"
        assert reader.policy.attempts == 3
        assert reader.policy.retries == 2

    def test_missing_key_not_retried(self):
        reader = ResilientReader(MemoryStore(), fast_policy())
        with pytest.raises(SegmentNotFoundError):
            reader.get("ghost")
        assert reader.policy.attempts == 1

    def test_checksum_mismatch_heals_on_refetch(self):
        clean = b"payload bytes"

        class FlipOnce:
            def __init__(self):
                self.reads = 0

            def get(self, key):
                self.reads += 1
                if self.reads == 1:
                    return b"\x00" + clean[1:]  # wire flip, first read only
                return clean

        reader = ResilientReader(
            FlipOnce(), fast_policy(),
            checksums={"k": segment_checksum(clean)},
        )
        assert reader.get("k") == clean
        assert reader.policy.retries == 1

    def test_persistent_corruption_raises_after_retries(self):
        inner = MemoryStore()
        inner.put("k", b"garbage that never matches")
        reader = ResilientReader(
            inner, fast_policy(max_attempts=3),
            checksums={"k": segment_checksum(b"what was written")},
        )
        with pytest.raises(SegmentCorruptionError):
            reader.get("k")
        assert reader.policy.attempts == 3

    def test_register_checksums_after_construction(self):
        inner = MemoryStore()
        inner.put("k", b"data")
        reader = ResilientReader(inner, fast_policy(max_attempts=2))
        assert reader.get("k") == b"data"  # unverified until registered
        reader.register_checksums({"k": segment_checksum(b"different")})
        with pytest.raises(SegmentCorruptionError):
            reader.get("k")

    def test_delegates_reader_surface(self):
        inner = MemoryStore()
        inner.put("k", b"data")
        reader = ResilientReader(inner, fast_policy())
        assert reader.size_of("k") == 4
        assert reader.keys() == ["k"]
        assert "k" in reader
        reader.put("j", b"through")  # writes pass through
        assert inner.get("j") == b"through"


class TestChecksumRecording:
    def test_store_field_records_crc32(self, field, stored):
        index = json.loads(stored.get("vx.index").decode())
        segments = index["segments"]
        assert segments, "index must carry a segments table"
        for key, meta in segments.items():
            assert meta["crc32"] == segment_checksum(stored.get(key))

    def test_index_checksums_roundtrip(self, stored):
        index = json.loads(stored.get("vx.index").decode())
        checksums = index_checksums(index)
        assert checksums
        assert all(isinstance(v, int) for v in checksums.values())

    def test_index_checksums_empty_for_legacy_index(self, stored):
        index = json.loads(stored.get("vx.index").decode())
        for meta in index["segments"].values():
            meta.pop("crc32")
        assert index_checksums(index) == {}


def _corrupt_one_segment(store, name="vx"):
    """Flip a bit of one payload segment in-place; return its key."""
    key = next(k for k in store.keys() if ".index" not in k)
    blob = bytearray(store._blobs[key])
    blob[len(blob) // 2] ^= 0x10
    store._blobs[key] = bytes(blob)
    return key


class TestVerifiedLoadAndOpen:
    def test_load_field_detects_persistent_corruption(self, field, stored):
        _corrupt_one_segment(stored)
        with pytest.raises(SegmentCorruptionError):
            load_field(stored, "vx")

    def test_load_field_verify_off_skips_checksums(self, field, stored):
        # A bit flip in the middle of a compressed payload does not
        # necessarily break parsing — but verification must be the
        # layer that catches it, not luck. verify=False documents the
        # escape hatch: parse errors still surface as typed corruption.
        _corrupt_one_segment(stored)
        try:
            load_field(stored, "vx", verify=False)
        except SegmentCorruptionError:
            pass  # parse-level detection is acceptable here

    def test_open_field_heals_one_time_flip(self, field, stored):
        data, f = field

        class FlipFirstRead:
            """Corrupt each key's first read only (wire flip)."""

            def __init__(self, inner):
                self._inner = inner
                self._seen = set()

            def get(self, key):
                blob = self._inner.get(key)
                if key not in self._seen and ".index" not in key:
                    self._seen.add(key)
                    return bytes([blob[0] ^ 0x01]) + blob[1:]
                return blob

            def __getattr__(self, name):
                return getattr(self._inner, name)

        lazy = open_field(FlipFirstRead(stored), "vx")
        result = Reconstructor(lazy).reconstruct(tolerance=1e-6)
        clean = Reconstructor(f).reconstruct(tolerance=1e-6)
        np.testing.assert_array_equal(result.data, clean.data)

    def test_open_field_raises_on_persistent_corruption(self, field, stored):
        _corrupt_one_segment(stored)
        lazy = open_field(stored, "vx")
        with pytest.raises(SegmentCorruptionError):
            Reconstructor(lazy).reconstruct(tolerance=None)


class TestSegmentCacheIntegrity:
    def test_cache_verifies_cold_fetch(self, field, stored):
        _corrupt_one_segment(stored)
        cache = SegmentCache(stored, max_bytes=1 << 20)
        lazy = open_field(stored, "vx", cache=cache)
        with pytest.raises(SegmentCorruptionError):
            Reconstructor(lazy).reconstruct(tolerance=None)
        assert cache.corruption_refetches >= 1
        assert cache.corruption_failures >= 1
        assert cache.stats()["corruption_failures"] >= 1

    def test_cache_heals_one_time_flip(self, field, stored):
        data, f = field

        class FlipFirstRead:
            def __init__(self, inner):
                self._inner = inner
                self._seen = set()

            def get(self, key):
                blob = self._inner.get(key)
                if key not in self._seen and ".index" not in key:
                    self._seen.add(key)
                    return bytes([blob[0] ^ 0x01]) + blob[1:]
                return blob

            def __getattr__(self, name):
                return getattr(self._inner, name)

        cache = SegmentCache(FlipFirstRead(stored), max_bytes=1 << 20)
        lazy = open_field(stored, "vx", cache=cache)
        result = Reconstructor(lazy).reconstruct(tolerance=1e-6)
        clean = Reconstructor(f).reconstruct(tolerance=1e-6)
        np.testing.assert_array_equal(result.data, clean.data)
        assert cache.corruption_refetches >= 1
        assert cache.corruption_failures == 0

    def test_concurrent_resolve_reads_store_once(self):
        """In-flight dedup: N racing misses on one key, one store read."""
        gate = threading.Event()

        class SlowStore:
            def __init__(self):
                self.reads = 0
                self._lock = threading.Lock()

            def get(self, key):
                with self._lock:
                    self.reads += 1
                gate.wait(5.0)  # hold every would-be reader at the gate
                return b"shared blob"

        store = SlowStore()
        cache = SegmentCache(store, max_bytes=1 << 20)
        results = []
        errors = []

        def worker():
            try:
                results.append(cache.get("k"))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join(10.0)
        assert not errors
        assert results == [b"shared blob"] * 8
        assert store.reads == 1
        assert cache.misses == 1 and cache.hits == 7

    def test_verified_concurrent_resolve_single_read(self):
        """Checksum verification must not break the dedup guarantee."""
        blob = b"verified shared blob"

        class CountingStore:
            def __init__(self):
                self.reads = 0
                self._lock = threading.Lock()

            def get(self, key):
                with self._lock:
                    self.reads += 1
                return blob

        store = CountingStore()
        cache = SegmentCache(store, max_bytes=1 << 20)
        cache.register_checksums({"k": segment_checksum(blob)})
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(cache.get("k")))
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert results == [blob] * 8
        assert store.reads == 1


class TestCorruptPersistedState:
    def test_missing_index_is_not_found(self):
        with pytest.raises(SegmentNotFoundError):
            open_field(MemoryStore(), "nope")

    def test_truncated_index_is_typed(self, stored):
        raw = stored.get("vx.index")
        stored.put("vx.index", raw[: len(raw) // 2])
        with pytest.raises(SegmentCorruptionError):
            open_field(stored, "vx")

    def test_non_json_index_is_typed(self, stored):
        stored.put("vx.index", b"\x00\x01\x02 not json")
        with pytest.raises(SegmentCorruptionError):
            load_field(stored, "vx")

    def test_non_dict_index_is_typed(self, stored):
        stored.put("vx.index", json.dumps([1, 2]).encode())
        with pytest.raises(SegmentCorruptionError):
            open_field(stored, "vx")

    def test_truncated_segment_is_typed_not_struct_error(self, field,
                                                         stored):
        key = next(k for k in stored.keys() if ".index" not in k)
        stored.put(key, stored.get(key)[:3])
        with pytest.raises(SegmentCorruptionError):
            load_field(stored, "vx")
        # Even with verification off, the parse layer types the failure
        # instead of leaking struct.error/IndexError from the codec.
        with pytest.raises(SegmentCorruptionError):
            load_field(stored, "vx", verify=False)

    def test_truncated_segment_lazy_path_is_typed(self, field, stored):
        key = next(k for k in stored.keys() if ".index" not in k)
        stored.put(key, stored.get(key)[:3])
        lazy = open_field(stored, "vx", verify=False)
        with pytest.raises(SegmentCorruptionError):
            Reconstructor(lazy).reconstruct(tolerance=None)

    def test_legacy_index_without_checksums_still_opens(self, field,
                                                        stored):
        data, f = field
        index = json.loads(stored.get("vx.index").decode())
        for meta in index["segments"].values():
            meta.pop("crc32")
        stored.put("vx.index", json.dumps(index).encode())
        lazy = open_field(stored, "vx")
        result = Reconstructor(lazy).reconstruct(tolerance=1e-4)
        assert float(np.max(np.abs(result.data - data))) <= 1e-4

    def test_truncated_tiled_index_is_typed(self, field):
        data, _ = field
        store = MemoryStore()
        tiled = TiledRefactorer((12, 12, 8)).refactor(data, name="rho")
        store_tiled_field(store, tiled)
        raw = store.get("rho.tiles")
        store.put("rho.tiles", raw[: len(raw) // 3])
        with pytest.raises(SegmentCorruptionError):
            open_tiled_field(store, "rho")


class TestDegradedReconstruction:
    def test_on_fault_validated(self, field, stored):
        lazy = open_field(stored, "vx")
        with pytest.raises(ValueError):
            Reconstructor(lazy).reconstruct(tolerance=1e-2,
                                            on_fault="ignore")

    def test_raise_is_default(self, field, stored):
        flaky = FaultInjectingStore(stored, sleep=_noop_sleep)
        lazy = open_field(flaky, "vx", verify=False)
        flaky.transient_rate = 1.0
        with pytest.raises(TransientStoreError):
            Reconstructor(lazy).reconstruct(tolerance=1e-2)

    def test_degrade_returns_last_committed_then_resumes(self, field,
                                                         stored):
        data, f = field
        clean = Reconstructor(f)
        step1_ref = clean.reconstruct(tolerance=1e-1)
        step2_ref = clean.reconstruct(tolerance=1e-4)

        flaky = FaultInjectingStore(stored, sleep=_noop_sleep)
        lazy = open_field(flaky, "vx")
        recon = Reconstructor(lazy)
        step1 = recon.reconstruct(tolerance=1e-1)
        np.testing.assert_array_equal(step1.data, step1_ref.data)

        flaky.transient_rate = 1.0  # outage
        degraded = recon.reconstruct(tolerance=1e-4, on_fault="degrade")
        assert degraded.degraded is True
        assert degraded.failed_groups is not None
        np.testing.assert_array_equal(degraded.data, step1.data)

        flaky.transient_rate = 0.0  # store recovers
        resumed = recon.reconstruct(tolerance=1e-4)
        assert resumed.degraded is False
        np.testing.assert_array_equal(resumed.data, step2_ref.data)

    def test_degrade_with_nothing_committed(self, field, stored):
        """An outage before any step: degrade yields the coarsest
        possible answer (no groups) instead of raising."""
        flaky = FaultInjectingStore(stored, sleep=_noop_sleep)
        lazy = open_field(flaky, "vx")
        flaky.transient_rate = 1.0  # outage right after open
        result = Reconstructor(lazy).reconstruct(tolerance=1e-3,
                                                 on_fault="degrade")
        assert result.degraded is True
        assert result.data.shape == lazy.shape

    def test_service_session_forwards_on_fault(self, field, stored):
        service = RetrievalService(stored)
        session = service.session("vx")
        step1 = session.reconstruct(tolerance=1e-1)
        assert step1.degraded is False

        # cache has step-1 segments; fail everything else
        broken = FaultInjectingStore(stored, transient_rate=1.0,
                                     sleep=_noop_sleep)
        service.cache._reader = broken
        degraded = session.reconstruct(tolerance=1e-5, on_fault="degrade")
        assert degraded.degraded is True
        np.testing.assert_array_equal(degraded.data, step1.data)

        service.cache._reader = stored  # recovery
        resumed = session.reconstruct(tolerance=1e-5)
        assert resumed.degraded is False
        ref = Reconstructor(field[1]).reconstruct(tolerance=1e-5)
        np.testing.assert_array_equal(resumed.data, ref.data)


class TestTiledDegradedReconstruction:
    @pytest.fixture()
    def tiled_store(self, field):
        data, _ = field
        store = MemoryStore()
        tiled = TiledRefactorer((8, 8, 8)).refactor(data, name="rho")
        store_tiled_field(store, tiled)
        return data, tiled, store

    def test_result_type_unpacks_like_tuple(self):
        arr = np.zeros((2, 2))
        res = TiledReconstructionResult(arr, 0.5, degraded=True,
                                        failed_tiles=[3, 1],
                                        failed_groups={1: None})
        out, bound = res
        assert out is arr and bound == 0.5
        assert res.data is arr and res.error_bound == 0.5
        assert res[0] is arr and res[1] == 0.5
        assert res.degraded is True
        assert res.failed_tiles == [1, 3]
        assert res.failed_groups == {1: None}
        assert isinstance(res, tuple)

    def test_clean_result_not_degraded(self, tiled_store):
        _, tiled, _ = tiled_store
        res = TiledReconstructor(tiled).reconstruct(tolerance=1e-2)
        assert isinstance(res, TiledReconstructionResult)
        assert res.degraded is False and res.failed_tiles == []

    def test_on_fault_validated(self, tiled_store):
        _, tiled, _ = tiled_store
        with pytest.raises(ValueError):
            TiledReconstructor(tiled).reconstruct(tolerance=1e-2,
                                                  on_fault="never")

    def test_unopened_tiles_degrade_to_zeros(self, tiled_store):
        _, _, store = tiled_store
        flaky = FaultInjectingStore(store, sleep=_noop_sleep)
        lazy = open_tiled_field(flaky, "rho")
        recon = TiledReconstructor(lazy)
        flaky.transient_rate = 1.0  # outage before any tile opened
        res = recon.reconstruct(tolerance=1e-2, on_fault="degrade")
        assert res.degraded is True
        assert res.error_bound == np.inf
        assert set(res.failed_tiles) == set(range(lazy.num_tiles))
        assert all(g is None for g in res.failed_groups.values())
        np.testing.assert_array_equal(res.data, np.zeros_like(res.data))

    @pytest.mark.parent_store_mutation
    def test_degrade_then_resume_bit_identical(self, tiled_store):
        data, tiled, store = tiled_store
        ref = TiledReconstructor(tiled)
        ref1 = ref.reconstruct(tolerance=1e-1)
        ref2 = ref.reconstruct(tolerance=1e-4)

        flaky = FaultInjectingStore(store, sleep=_noop_sleep)
        lazy = open_tiled_field(flaky, "rho")
        recon = TiledReconstructor(lazy)
        step1 = recon.reconstruct(tolerance=1e-1)
        np.testing.assert_array_equal(step1.data, ref1.data)

        flaky.transient_rate = 1.0
        degraded = recon.reconstruct(tolerance=1e-4, on_fault="degrade")
        assert degraded.degraded is True
        assert degraded.failed_tiles  # every touched tile fell back
        np.testing.assert_array_equal(degraded.data, step1.data)

        flaky.transient_rate = 0.0
        resumed = recon.reconstruct(tolerance=1e-4)
        assert resumed.degraded is False
        np.testing.assert_array_equal(resumed.data, ref2.data)

    @pytest.mark.parent_store_mutation
    def test_tiled_session_forwards_on_fault(self, tiled_store):
        data, tiled, store = tiled_store
        service = RetrievalService(store)
        session = service.tiled_session("rho")
        out1, _ = session.reconstruct(tolerance=1e-1)

        broken = FaultInjectingStore(store, transient_rate=1.0,
                                     sleep=_noop_sleep)
        service.cache._reader = broken
        degraded = session.reconstruct(tolerance=1e-5, on_fault="degrade")
        assert degraded.degraded is True
        np.testing.assert_array_equal(degraded.data, out1)

        service.cache._reader = store
        resumed = session.reconstruct(tolerance=1e-5)
        assert resumed.degraded is False
        ref = TiledReconstructor(tiled).progressive([1e-1, 1e-5])[-1]
        np.testing.assert_array_equal(resumed.data, ref.data)
