"""Tests for the bitplane codec and its three parallelization designs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bitplane import (
    DESIGNS,
    BitplaneStream,
    decode_bitplanes,
    encode_bitplanes,
)
from repro.bitplane import locality_block, register_block
from repro.bitplane.encoding import extract_planes, inject_planes


def sample(n=1000, seed=0, dtype=np.float32):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n).astype(dtype)


class TestExtractInject:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        mags = rng.integers(0, 1 << 20, 257).astype(np.uint64)
        signs = rng.integers(0, 2, 257).astype(np.uint8)
        planes = extract_planes(signs, mags, 20)
        s2, m2 = inject_planes(planes, 257, 20)
        np.testing.assert_array_equal(signs, s2)
        np.testing.assert_array_equal(mags, m2)

    def test_partial_planes_zero_low_bits(self):
        mags = np.array([0b1111], dtype=np.uint64)
        planes = extract_planes(np.zeros(1, np.uint8), mags, 4)
        _, m2 = inject_planes(planes[:3], 1, 4)  # sign + 2 planes
        assert m2[0] == 0b1100

    def test_too_many_planes_rejected(self):
        planes = extract_planes(np.zeros(1, np.uint8),
                                np.zeros(1, np.uint64), 2)
        with pytest.raises(ValueError):
            inject_planes(planes + [planes[-1]], 1, 2)

    def test_plane_count(self):
        planes = extract_planes(np.zeros(9, np.uint8),
                                np.zeros(9, np.uint64), 7)
        assert len(planes) == 8  # sign + 7 magnitudes
        assert all(p.nbytes == 2 for p in planes)  # ceil(9/8)


class TestDesignsAgree:
    @pytest.mark.parametrize("design", DESIGNS)
    @pytest.mark.parametrize("n", [1, 7, 8, 31, 32, 1000, 1024 + 17])
    def test_full_roundtrip_matches_reference_quantization(self, design, n):
        data = sample(n, seed=n)
        stream = encode_bitplanes(data, 32, design=design)
        rec = decode_bitplanes(stream)
        # Full decode equals the fixed-point quantization of the input.
        ref = decode_bitplanes(encode_bitplanes(data, 32,
                                                design="locality_block"))
        np.testing.assert_array_equal(rec, ref)

    @pytest.mark.parametrize("k", [0, 1, 5, 17, 33])
    def test_partial_decode_identical_across_designs(self, k):
        """Portability: any design's stream yields the same values at any
        retrieval depth."""
        data = sample(2048, seed=9)
        decoded = [
            decode_bitplanes(encode_bitplanes(data, 32, design=d), k)
            for d in DESIGNS
        ]
        np.testing.assert_array_equal(decoded[0], decoded[1])
        np.testing.assert_array_equal(decoded[0], decoded[2])

    def test_register_block_layout_differs_in_stream(self):
        data = sample(32 * 32 * 4, seed=3)
        natural = encode_bitplanes(data, 32, design="locality_block")
        warp = encode_bitplanes(data, 32, design="register_block")
        assert natural.layout == "natural"
        assert warp.layout == "warp"
        # Same decoded values, different stream bytes.
        assert any(
            not np.array_equal(a, b)
            for a, b in zip(natural.planes[1:], warp.planes[1:])
        )

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            encode_bitplanes(sample(8), 8, design="magic")


class TestPartialDecodeErrors:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_error_bound_holds_per_plane_count(self, design):
        data = sample(4096, seed=11, dtype=np.float64)
        stream = encode_bitplanes(data, 32, design=design)
        for k in range(0, stream.num_planes + 1, 3):
            rec = decode_bitplanes(stream, k)
            bound = stream.error_bound(k)
            assert np.max(np.abs(rec - data)) <= bound + 1e-15

    def test_plane_bytes_accumulate(self):
        stream = encode_bitplanes(sample(1000), 32)
        total = stream.plane_bytes()
        assert total == sum(p.nbytes for p in stream.planes)
        assert stream.plane_bytes(3) < total

    def test_decode_invalid_plane_count(self):
        stream = encode_bitplanes(sample(16), 8)
        with pytest.raises(ValueError):
            decode_bitplanes(stream, stream.num_planes + 1)


class TestSerialization:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_roundtrip(self, design):
        data = sample(300, seed=5, dtype=np.float64)
        stream = encode_bitplanes(data, 24, design=design)
        restored = BitplaneStream.from_bytes(stream.to_bytes())
        assert restored.design == design
        assert restored.num_elements == 300
        assert restored.exponent == stream.exponent
        assert restored.dtype == np.float64
        np.testing.assert_array_equal(
            decode_bitplanes(restored), decode_bitplanes(stream)
        )

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            BitplaneStream.from_bytes(b"nope" + b"\0" * 100)

    def test_cross_design_decode(self):
        """Stream encoded as register_block decodes via generic path —
        the portability guarantee across 'devices'."""
        data = sample(500, seed=21)
        blob = encode_bitplanes(data, 32, design="register_block").to_bytes()
        stream = BitplaneStream.from_bytes(blob)
        rec = decode_bitplanes(stream, 10)
        direct = decode_bitplanes(
            encode_bitplanes(data, 32, design="locality_block"), 10
        )
        np.testing.assert_array_equal(rec, direct)


class TestTilePermutation:
    def test_is_permutation(self):
        perm = register_block.tile_permutation(1000, 8, warp_size=32)
        assert np.array_equal(np.sort(perm), np.arange(1000))

    def test_inverse(self):
        perm = register_block.tile_permutation(777, 16, warp_size=32)
        inv = register_block.inverse_tile_permutation(777, 16, warp_size=32)
        np.testing.assert_array_equal(perm[inv], np.arange(777))

    def test_tail_is_natural(self):
        tile = 32 * 8
        perm = register_block.tile_permutation(tile + 5, 8, warp_size=32)
        np.testing.assert_array_equal(perm[tile:], np.arange(tile, tile + 5))

    def test_tile_structure(self):
        # Stream position t*B+i must read element i*W+t.
        W, B = 4, 3
        perm = register_block.tile_permutation(W * B, B, warp_size=W)
        for t in range(W):
            for i in range(B):
                assert perm[t * B + i] == i * W + t

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            register_block.tile_permutation(10, 0, warp_size=32)


class TestLocalityBlockHelpers:
    def test_num_blocks_ceil(self):
        assert locality_block.num_blocks(100, 32) == 4
        assert locality_block.num_blocks(96, 32) == 3

    def test_block_view_pads(self):
        mags = np.arange(10, dtype=np.uint64)
        view = locality_block.block_view(mags, 4)
        assert view.shape == (3, 4)
        assert view[2, 2] == 0  # padded tail

    def test_parallelism(self):
        assert locality_block.parallelism(1 << 20, 32) == 1 << 15

    def test_recommended_block_size(self):
        assert locality_block.recommended_block_size(32) == 32
        assert locality_block.recommended_block_size(2) == 4

    def test_rejects_zero_block(self):
        with pytest.raises(ValueError):
            locality_block.num_blocks(10, 0)


@settings(max_examples=40, deadline=None)
@given(
    data=hnp.arrays(
        dtype=np.float32,
        shape=st.integers(1, 400),
        elements=st.floats(-1e4, 1e4, allow_nan=False, width=32),
    ),
    design=st.sampled_from(DESIGNS),
    planes=st.integers(1, 33),
)
def test_property_roundtrip_and_bound(data, design, planes):
    """Hypothesis: every design round-trips and respects the plane bound."""
    stream = encode_bitplanes(data, 32, design=design)
    rec = decode_bitplanes(stream, planes)
    bound = stream.error_bound(planes)
    assert np.max(np.abs(rec.astype(np.float64) - data.astype(np.float64))) \
        <= bound * (1 + 1e-6) + 1e-30
